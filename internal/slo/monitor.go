package slo

import (
	"fmt"
	"sync"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
)

// LatencyFamily is the histogram family the default latency objective
// reads. A process wiring DefaultSpecs must opt the family into bucket
// retention (Sampler.RetainBuckets(LatencyFamily)) before sampling
// starts, or the quantile indicator has no bucket series to read.
const LatencyFamily = "event_e2e_latency_seconds"

// Targets parameterize DefaultSpecs. Zero values take the defaults
// noted per field.
type Targets struct {
	// LatencyP99Seconds caps the windowed publish→deliver p99 (default
	// 0.05 s — generous, because latency is the one wall-clock SLI).
	LatencyP99Seconds float64
	// StalenessPeriods caps per-broker convergence staleness (default 4;
	// set to the engine's FullSyncEvery — the paper's own bound on how
	// long a broker may lag before a full sync repairs it).
	StalenessPeriods float64
	// PrecisionFloor is the minimum deliveries/(deliveries+false
	// positives) ratio per tick (default 0.5 — summarization trades
	// precision for state, but a summary that lets through more noise
	// than signal has degenerated).
	PrecisionFloor float64
	// BytesPerPeriodCeiling caps Δpropagation_bytes/Δpropagation_periods
	// (default 64 KiB — above routine full-sync spikes on the benchmark
	// topology, below a churn storm's sustained load).
	BytesPerPeriodCeiling float64
	// FastWindow and SlowWindow are the shared window lengths in sampler
	// ticks (defaults 4 and 16).
	FastWindow int
	SlowWindow int
}

// DefaultTargets returns the stock targets.
func DefaultTargets() Targets {
	return Targets{
		LatencyP99Seconds:     0.05,
		StalenessPeriods:      4,
		PrecisionFloor:        0.5,
		BytesPerPeriodCeiling: 64 * 1024,
		FastWindow:            4,
		SlowWindow:            16,
	}
}

func (t *Targets) fill() {
	d := DefaultTargets()
	if t.LatencyP99Seconds <= 0 {
		t.LatencyP99Seconds = d.LatencyP99Seconds
	}
	if t.StalenessPeriods <= 0 {
		t.StalenessPeriods = d.StalenessPeriods
	}
	if t.PrecisionFloor <= 0 {
		t.PrecisionFloor = d.PrecisionFloor
	}
	if t.BytesPerPeriodCeiling <= 0 {
		t.BytesPerPeriodCeiling = d.BytesPerPeriodCeiling
	}
	if t.FastWindow <= 0 {
		t.FastWindow = d.FastWindow
	}
	if t.SlowWindow <= 0 {
		t.SlowWindow = d.SlowWindow
	}
}

// DefaultSpecs builds the engine's five stock objectives over the
// instrument families the core and netsim register.
func DefaultSpecs(tg Targets) []Spec {
	tg.fill()
	return []Spec{
		{
			Name:        "publish_deliver_p99",
			Description: fmt.Sprintf("windowed publish→deliver p99 ≤ %.0f ms", tg.LatencyP99Seconds*1000),
			Kind:        KindQuantile,
			Series:      []string{LatencyFamily},
			Quantile:    0.99,
			Buckets:     metrics.DefLatencyBuckets,
			Op:          OpLE,
			Target:      tg.LatencyP99Seconds,
			Budget:      0.2,
			FastWindow:  tg.FastWindow,
			SlowWindow:  tg.SlowWindow,
		},
		{
			Name:        "convergence_staleness",
			Description: fmt.Sprintf("max broker staleness ≤ %.0f propagation periods", tg.StalenessPeriods),
			Kind:        KindMax,
			Series:      []string{"convergence_staleness_periods"},
			Op:          OpLE,
			Target:      tg.StalenessPeriods,
			Budget:      0.05,
			FastWindow:  tg.FastWindow,
			SlowWindow:  tg.SlowWindow,
		},
		{
			Name:        "delivery_precision",
			Description: fmt.Sprintf("deliveries/(deliveries+false positives) ≥ %.2f", tg.PrecisionFloor),
			Kind:        KindRatio,
			Num:         []string{"broker_deliveries"},
			Den:         []string{"broker_deliveries", "broker_false_positives"},
			Op:          OpGE,
			Target:      tg.PrecisionFloor,
			Budget:      0.25,
			FastWindow:  tg.FastWindow,
			SlowWindow:  tg.SlowWindow,
		},
		{
			Name:        "delivery_loss",
			Description: "no event or delivery traffic dropped or corrupted",
			Kind:        KindSum,
			Series: []string{
				"bus_dropped{event}", "bus_dropped{deliver}",
				"bus_decode_errors{event}", "bus_decode_errors{deliver}",
			},
			Op:         OpLE,
			Target:     0,
			Budget:     0.05,
			FastWindow: tg.FastWindow,
			SlowWindow: tg.SlowWindow,
		},
		{
			Name:        "bytes_per_period",
			Description: fmt.Sprintf("propagation bytes per period ≤ %.0f", tg.BytesPerPeriodCeiling),
			Kind:        KindRatio,
			Num:         []string{"propagation_bytes"},
			Den:         []string{"propagation_periods"},
			Op:          OpLE,
			Target:      tg.BytesPerPeriodCeiling,
			Budget:      0.2,
			FastWindow:  tg.FastWindow,
			SlowWindow:  tg.SlowWindow,
		},
	}
}

// Monitor drives an engine over a sampler's history, mirrors each
// verdict into slo_* gauges, journals breach/recover transitions into
// the flight recorder, and retains the latest report for the wire and
// debug surfaces. Drive it with Start/Stop (background goroutine) or
// EvalOnce (manual — scenarios evaluate in lockstep with their ticks).
type Monitor struct {
	eng     *Engine
	sampler *metrics.Sampler
	rec     *flight.Recorder // optional

	// Per-spec gauge mirrors: state 0/1/2, burns and budget in milli
	// units (gauges are integers).
	state    []*metrics.Gauge
	fastBurn []*metrics.Gauge
	slowBurn []*metrics.Gauge
	budget   []*metrics.Gauge

	mu   sync.Mutex
	last *Report
	prev []State

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	stopped   chan struct{}
}

// NewMonitor wires a monitor. reg receives the slo_* gauge mirrors (nil
// to skip mirroring); rec receives breach/recover records (nil to skip
// journaling).
func NewMonitor(eng *Engine, sampler *metrics.Sampler, reg *metrics.Registry, rec *flight.Recorder) *Monitor {
	m := &Monitor{
		eng:     eng,
		sampler: sampler,
		rec:     rec,
		prev:    make([]State, len(eng.specs)),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for i := range m.prev {
		m.prev[i] = StateOK
	}
	if reg != nil {
		st := reg.GaugeVec("slo_state")
		fb := reg.GaugeVec("slo_fast_burn_milli")
		sb := reg.GaugeVec("slo_slow_burn_milli")
		bu := reg.GaugeVec("slo_budget_remaining_milli")
		for _, spec := range eng.specs {
			m.state = append(m.state, st.With(spec.Name))
			m.fastBurn = append(m.fastBurn, fb.With(spec.Name))
			m.slowBurn = append(m.slowBurn, sb.With(spec.Name))
			m.budget = append(m.budget, bu.With(spec.Name))
		}
		// Budget starts whole.
		for _, g := range m.budget {
			g.Set(1000)
		}
	}
	return m
}

// milli converts a burn/budget fraction to an integer gauge value,
// clamped so a runaway burn cannot overflow the display.
func milli(v float64) int64 {
	const ceiling = 1_000_000
	if v < 0 {
		return 0
	}
	if v > ceiling/1000 {
		return ceiling
	}
	return int64(v * 1000)
}

// EvalOnce evaluates every objective against the sampler's current
// history, updates the gauge mirrors, journals state transitions, and
// returns the report.
func (m *Monitor) EvalOnce() *Report {
	rep := m.eng.Evaluate(m.sampler.History())

	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range rep.Verdicts {
		v := &rep.Verdicts[i]
		if m.state != nil {
			m.state[i].Set(int64(v.State.Severity()))
			m.fastBurn[i].Set(milli(v.FastBurn))
			m.slowBurn[i].Set(milli(v.SlowBurn))
			m.budget[i].Set(milli(v.BudgetRemaining))
		}
		was, now := m.prev[i], v.State
		if now == StateBreach && was != StateBreach {
			m.rec.Record(flight.EvSLOBreach, -1,
				milli(v.FastBurn), milli(v.SlowBurn), milli(v.BudgetRemaining), v.Name)
		}
		if was == StateBreach && now != StateBreach {
			m.rec.Record(flight.EvSLORecover, -1,
				milli(v.FastBurn), milli(v.SlowBurn), milli(v.BudgetRemaining), v.Name)
		}
		m.prev[i] = now
	}
	m.last = rep
	return rep
}

// Last returns the most recent report (nil before the first EvalOnce).
func (m *Monitor) Last() *Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Start launches periodic evaluation every interval. Idempotent.
func (m *Monitor) Start(every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	m.startOnce.Do(func() {
		go func() {
			defer close(m.stopped)
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for {
				select {
				case <-m.done:
					return
				case <-ticker.C:
					m.EvalOnce()
				}
			}
		}()
	})
}

// Stop halts periodic evaluation and waits for the goroutine to exit.
// Idempotent; safe without Start.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.done) })
	m.startOnce.Do(func() { close(m.stopped) })
	<-m.stopped
}
