package slo

import (
	"testing"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
)

func TestDefaultSpecsValidate(t *testing.T) {
	specs := DefaultSpecs(Targets{})
	if len(specs) != 5 {
		t.Fatalf("default specs = %d, want 5", len(specs))
	}
	if _, err := New(specs...); err != nil {
		t.Fatalf("default specs invalid: %v", err)
	}
	custom := DefaultSpecs(Targets{StalenessPeriods: 9, FastWindow: 2, SlowWindow: 6})
	for _, s := range custom {
		if s.Name == "convergence_staleness" && s.Target != 9 {
			t.Fatalf("staleness target = %v, want 9", s.Target)
		}
		if s.FastWindow != 2 || s.SlowWindow != 6 {
			t.Fatalf("%s windows = %d/%d, want 2/6", s.Name, s.FastWindow, s.SlowWindow)
		}
	}
}

// TestMonitorTransitions: a monitor mirrors verdicts into gauges and
// journals exactly one breach record on entry and one recover record on
// exit — not one per burning tick.
func TestMonitorTransitions(t *testing.T) {
	h := newHarness(t)
	g := h.reg.Gauge("staleness")
	eng, err := New(Spec{
		Name: "staleness", Kind: KindMax, Series: []string{"staleness"},
		Op: OpLE, Target: 4, Budget: 0.5, FastWindow: 1, SlowWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(1 << 14)
	m := NewMonitor(eng, h.sampler, h.reg, rec)

	g.Set(1)
	h.tick()
	if rep := m.EvalOnce(); rep.Worst() != StateOK {
		t.Fatalf("clean tick: %s", rep.Worst())
	}

	// Two violating ticks: both windows burn → breach; a third stays in
	// breach without a second journal record.
	for i := 0; i < 3; i++ {
		g.Set(99)
		h.tick()
		m.EvalOnce()
	}
	if rep := m.Last(); rep.Worst() != StateBreach {
		t.Fatalf("sustained violation: %s", rep.Worst())
	}
	breaches, recovers := journalCounts(rec)
	if breaches != 1 || recovers != 0 {
		t.Fatalf("after breach: %d breach / %d recover records, want 1/0", breaches, recovers)
	}

	// Gauge mirrors reflect the breach.
	if st := gaugeValue(t, h.reg, "slo_state{staleness}"); st != 2 {
		t.Fatalf("slo_state gauge = %v", st)
	}

	// Recovery: clean ticks push both windows back under budget.
	for i := 0; i < 3; i++ {
		g.Set(1)
		h.tick()
		m.EvalOnce()
	}
	if rep := m.Last(); rep.Worst() != StateOK {
		t.Fatalf("after recovery: %s", rep.Worst())
	}
	breaches, recovers = journalCounts(rec)
	if breaches != 1 || recovers != 1 {
		t.Fatalf("after recovery: %d breach / %d recover records, want 1/1", breaches, recovers)
	}
	if st := gaugeValue(t, h.reg, "slo_state{staleness}"); st != 0 {
		t.Fatalf("slo_state gauge after recovery = %v", st)
	}
}

func gaugeValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("gauge %s not registered", name)
	return 0
}

func journalCounts(rec *flight.Recorder) (breaches, recovers int) {
	for _, r := range rec.Records() {
		switch r.Type {
		case flight.EvSLOBreach:
			breaches++
		case flight.EvSLORecover:
			recovers++
		}
	}
	return
}

// TestMonitorStartStop: the background loop evaluates at least once and
// shuts down cleanly; nil registry and recorder are tolerated.
func TestMonitorStartStop(t *testing.T) {
	h := newHarness(t)
	h.reg.Gauge("s").Set(1)
	h.tick()
	eng, err := New(Spec{Name: "x", Kind: KindMax, Series: []string{"s"}, Op: OpLE, Target: 4, Budget: 0.5, FastWindow: 1, SlowWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(eng, h.sampler, nil, nil)
	m.Start(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for m.Last() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	if m.Last() == nil {
		t.Fatal("background monitor never evaluated")
	}
}
