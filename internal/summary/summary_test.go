package summary

import (
	"math/rand"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// stockSchema is the paper's Figure 2 schema.
func stockSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Attribute{Name: "exchange", Type: schema.TypeString},
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "when", Type: schema.TypeDate},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
		schema.Attribute{Name: "volume", Type: schema.TypeInt},
		schema.Attribute{Name: "high", Type: schema.TypeFloat},
		schema.Attribute{Name: "low", Type: schema.TypeFloat},
	)
}

func mustSub(t testing.TB, s *schema.Schema, text string) *schema.Subscription {
	t.Helper()
	sub, err := schema.ParseSubscription(s, text)
	if err != nil {
		t.Fatalf("ParseSubscription(%q): %v", text, err)
	}
	return sub
}

func mustEvent(t testing.TB, s *schema.Schema, text string) *schema.Event {
	t.Helper()
	e, err := schema.ParseEvent(s, text)
	if err != nil {
		t.Fatalf("ParseEvent(%q): %v", text, err)
	}
	return e
}

func id(broker subid.BrokerID, local subid.LocalID) subid.ID {
	return subid.ID{Broker: broker, Local: local}
}

// TestPaperExample1 runs the full Example 1 of Section 3.3: broker A's two
// subscriptions are summarized; the Figure 2 event, matched at broker B
// against the summary, reports S1 but not S2.
func TestPaperExample1(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	sub1 := mustSub(t, s, `exchange = "N*SE" && symbol = OTE && price < 8.70 && price > 8.30`)
	sub2 := mustSub(t, s, `symbol >* OT && price = 8.20 && volume > 130000 && low < 8.05`)
	if err := sm.Insert(id(0, 1), sub1); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(0, 2), sub2); err != nil {
		t.Fatal(err)
	}
	ev := mustEvent(t, s, `exchange=NYSE symbol=OTE when=1057061125 price=8.40 volume=132700 high=8.80 low=8.22`)
	got := sm.Match(ev)
	if len(got) != 1 || got[0].Local != 1 {
		t.Fatalf("Match = %v, want S1 only", got)
	}
	// Counters from the paper: S1 appears in 3 lists (exchange, symbol,
	// price), S2 in 2 (symbol, volume) — S2's c3 has 4 attributes.
	if sm.NumSubscriptions() != 2 {
		t.Fatalf("NumSubscriptions = %d", sm.NumSubscriptions())
	}
}

func TestMatchRequiresAllAttributes(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	sub := mustSub(t, s, `price > 8 && volume > 100`)
	if err := sm.Insert(id(1, 1), sub); err != nil {
		t.Fatal(err)
	}
	// Event carries only price: no match.
	if got := sm.Match(mustEvent(t, s, `price=9`)); len(got) != 0 {
		t.Fatalf("partial event matched: %v", got)
	}
	if got := sm.Match(mustEvent(t, s, `price=9 volume=200`)); len(got) != 1 {
		t.Fatalf("full event did not match: %v", got)
	}
	// Extra event attributes are fine.
	if got := sm.Match(mustEvent(t, s, `price=9 volume=200 low=1 exchange=X`)); len(got) != 1 {
		t.Fatalf("event with extra attributes did not match: %v", got)
	}
}

func TestInsertDuplicateIDRejected(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	sub := mustSub(t, s, `price > 8`)
	if err := sm.Insert(id(1, 1), sub); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(1, 1), sub); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestInsertDerivesC3Mask(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	sub := mustSub(t, s, `price > 8 && volume > 100 && symbol = OTE`)
	if err := sm.Insert(id(2, 7), sub); err != nil {
		t.Fatal(err)
	}
	ids := sm.IDs()
	if len(ids) != 1 {
		t.Fatalf("IDs = %v", ids)
	}
	symID, _ := s.ID("symbol")
	priceID, _ := s.ID("price")
	volID, _ := s.ID("volume")
	want := subid.MaskOf(s.Len(), int(symID), int(priceID), int(volID))
	if !ids[0].Attrs.Equal(want) {
		t.Fatalf("c3 = %v, want %v", ids[0].Attrs, want)
	}
}

func TestRemove(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	sub1 := mustSub(t, s, `price > 8`)
	sub2 := mustSub(t, s, `price < 20 && symbol = OTE`)
	if err := sm.Insert(id(1, 1), sub1); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(1, 2), sub2); err != nil {
		t.Fatal(err)
	}
	ev := mustEvent(t, s, `price=10 symbol=OTE`)
	if got := sm.Match(ev); len(got) != 2 {
		t.Fatalf("Match = %v", got)
	}
	sm.Remove(id(1, 1))
	got := sm.Match(ev)
	if len(got) != 1 || got[0].Local != 2 {
		t.Fatalf("Match after remove = %v", got)
	}
	sm.Remove(id(1, 99)) // absent: no-op
	if sm.NumSubscriptions() != 1 {
		t.Fatalf("NumSubscriptions = %d", sm.NumSubscriptions())
	}
}

func TestNotEqualConstraints(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(1, 1), mustSub(t, s, `price != 5`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(1, 2), mustSub(t, s, `exchange != NYSE`)); err != nil {
		t.Fatal(err)
	}
	if got := sm.Match(mustEvent(t, s, `price=5`)); len(got) != 0 {
		t.Fatalf("price=5 matched ≠5: %v", got)
	}
	if got := sm.Match(mustEvent(t, s, `price=6`)); len(got) != 1 {
		t.Fatalf("price=6: %v", got)
	}
	if got := sm.Match(mustEvent(t, s, `exchange=LSE`)); len(got) != 1 {
		t.Fatalf("exchange=LSE: %v", got)
	}
	if got := sm.Match(mustEvent(t, s, `exchange=NYSE`)); len(got) != 0 {
		t.Fatalf("exchange=NYSE matched ≠NYSE: %v", got)
	}
}

func TestRangePlusNotEqualOnSameAttribute(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(1, 1), mustSub(t, s, `price > 1 && price != 5`)); err != nil {
		t.Fatal(err)
	}
	// Exact semantics: 5 excluded. Summary may over-approximate but must
	// not miss 6.
	if got := sm.Match(mustEvent(t, s, `price=6`)); len(got) != 1 {
		t.Fatalf("price=6: %v", got)
	}
	if got := sm.Match(mustEvent(t, s, `price=0.5`)); len(got) != 0 {
		// 0.5 is not >1 but IS ≠5, so the lossy summary reports it; the
		// owner's exact match would reject. Either is acceptable here —
		// but absence of S at 6 would be a bug tested above.
		t.Logf("lossy over-approximation at 0.5: %v", got)
	}
}

func TestMergeMultiBroker(t *testing.T) {
	s := stockSchema(t)
	a := New(s, interval.Lossy)
	b := New(s, interval.Lossy)
	if err := a.Insert(id(1, 1), mustSub(t, s, `price > 8 && price < 9`)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(id(2, 1), mustSub(t, s, `price > 8.5 && price < 10`)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(id(2, 2), mustSub(t, s, `symbol >* OT`)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.NumSubscriptions() != 3 {
		t.Fatalf("NumSubscriptions = %d", a.NumSubscriptions())
	}
	got := a.Match(mustEvent(t, s, `price=8.7`))
	if len(got) != 2 {
		t.Fatalf("Match(8.7) = %v", got)
	}
	// Merge is idempotent for duplicate ids.
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.NumSubscriptions() != 3 {
		t.Fatalf("after re-merge: %d", a.NumSubscriptions())
	}
	got = a.Match(mustEvent(t, s, `symbol=OTE`))
	if len(got) != 1 || got[0].Broker != 2 {
		t.Fatalf("Match(symbol) = %v", got)
	}
}

func TestMergeSchemaMismatch(t *testing.T) {
	a := New(stockSchema(t), interval.Lossy)
	other := New(schema.MustNew(schema.Attribute{Name: "x", Type: schema.TypeInt}), interval.Lossy)
	if err := a.Merge(other); err == nil {
		t.Fatal("cross-schema merge accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := stockSchema(t)
	a := New(s, interval.Lossy)
	if err := a.Insert(id(1, 1), mustSub(t, s, `price > 8`)); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	c.Remove(id(1, 1))
	if err := c.Insert(id(3, 3), mustSub(t, s, `volume > 1`)); err != nil {
		t.Fatal(err)
	}
	if a.NumSubscriptions() != 1 || !a.Contains(id(1, 1)) {
		t.Fatal("clone mutated original")
	}
	if got := a.Match(mustEvent(t, s, `volume=5`)); len(got) != 0 {
		t.Fatalf("clone leaked row into original: %v", got)
	}
}

func TestStatsAndSizeBytes(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(0, 1), mustSub(t, s, `price > 8.30 && price < 8.70 && symbol = OTE`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(0, 2), mustSub(t, s, `price = 8.20`)); err != nil {
		t.Fatal(err)
	}
	st := sm.Stats()
	if st.Arithmetic.NumRanges != 1 || st.Arithmetic.NumEq != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Strings.NumRows != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Subscriptions != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	// AACS: 2·1·4 + 1·4 + 2·4 = 20. SACS: 3 pattern bytes + 1 row + 1·4 = 8.
	if got := sm.SizeBytes(4, 4); got != 28 {
		t.Fatalf("SizeBytes = %d, want 28", got)
	}
	if sm.EncodedSize() <= 0 {
		t.Fatal("EncodedSize must be positive")
	}
}

// TestNoFalseNegativesRandomized is the load-bearing summary property: for
// random subscriptions and events, every exact match is reported by the
// summary pre-filter (in both AACS modes).
func TestNoFalseNegativesRandomized(t *testing.T) {
	s := stockSchema(t)
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		mode := mode
		name := map[interval.Mode]string{interval.Lossy: "lossy", interval.Exact: "exact"}[mode]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2024))
			sm := New(s, mode)
			type entry struct {
				id  subid.ID
				sub *schema.Subscription
			}
			var subs []entry
			for i := 0; i < 400; i++ {
				sub := randomSubscription(rng, s)
				sid := subid.ID{Broker: subid.BrokerID(rng.Intn(8)), Local: subid.LocalID(i)}
				if err := sm.Insert(sid, sub); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				subs = append(subs, entry{id: sid, sub: sub})
			}
			for i := 0; i < 2000; i++ {
				ev := randomEvent(rng, s)
				got := sm.MatchKeys(ev)
				gotSet := make(map[uint64]bool, len(got))
				for _, k := range got {
					gotSet[k] = true
				}
				for _, e := range subs {
					if e.sub.Matches(ev) && !gotSet[e.id.Key()] {
						t.Fatalf("false negative: sub %v (%s) matches event %s but summary missed it",
							e.id, e.sub.Format(s), ev.Format(s))
					}
				}
			}
		})
	}
}

// TestExactModeNoArithmeticFalsePositives: with Exact AACS mode and only
// equality/range arithmetic subscriptions (no string generalization in
// play), the summary match equals the exact match.
func TestExactModeNoArithmeticFalsePositives(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(77))
	sm := New(s, interval.Exact)
	type entry struct {
		id  subid.ID
		sub *schema.Subscription
	}
	var subs []entry
	for i := 0; i < 200; i++ {
		sub := randomArithmeticSubscription(rng, s)
		sid := subid.ID{Broker: 1, Local: subid.LocalID(i)}
		if err := sm.Insert(sid, sub); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, entry{id: sid, sub: sub})
	}
	for i := 0; i < 1000; i++ {
		ev := randomArithmeticEvent(rng, s)
		got := sm.MatchKeys(ev)
		want := make(map[uint64]bool)
		for _, e := range subs {
			if e.sub.Matches(ev) {
				want[e.id.Key()] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("event %s: got %d matches, want %d", ev.Format(s), len(got), len(want))
		}
		for _, k := range got {
			if !want[k] {
				t.Fatalf("event %s: spurious match %d", ev.Format(s), k)
			}
		}
	}
}

func randomSubscription(rng *rand.Rand, s *schema.Schema) *schema.Subscription {
	var cs []schema.Constraint
	nAttrs := 1 + rng.Intn(4)
	attrs := rng.Perm(s.Len())[:nAttrs]
	words := []string{"NYSE", "OTE", "LSE", "NASDAQ", "micronet", "microsoft"}
	for _, ai := range attrs {
		a := schema.AttrID(ai)
		if s.TypeOf(a).Arithmetic() {
			v := float64(rng.Intn(21))
			var val schema.Value
			switch s.TypeOf(a) {
			case schema.TypeInt:
				val = schema.IntValue(int64(v))
			case schema.TypeDate:
				val = schema.Value{Type: schema.TypeDate, Num: v}
			default:
				val = schema.FloatValue(v)
			}
			ops := []schema.Op{schema.OpEQ, schema.OpNE, schema.OpLT, schema.OpLE, schema.OpGT, schema.OpGE}
			cs = append(cs, schema.Constraint{Attr: a, Op: ops[rng.Intn(len(ops))], Value: val})
		} else {
			w := words[rng.Intn(len(words))]
			ops := []schema.Op{schema.OpEQ, schema.OpNE, schema.OpPrefix, schema.OpSuffix, schema.OpContains}
			op := ops[rng.Intn(len(ops))]
			text := w
			if op != schema.OpEQ && op != schema.OpNE && len(w) > 2 {
				text = w[:2+rng.Intn(len(w)-2)]
			}
			cs = append(cs, schema.Constraint{Attr: a, Op: op, Value: schema.StringValue(text)})
		}
	}
	sub, err := schema.NewSubscription(s, cs...)
	if err != nil {
		panic(err)
	}
	return sub
}

func randomEvent(rng *rand.Rand, s *schema.Schema) *schema.Event {
	words := []string{"NYSE", "OTE", "LSE", "NASDAQ", "micronet", "microsoft"}
	var fields []schema.Field
	for ai := 0; ai < s.Len(); ai++ {
		if rng.Intn(3) == 0 {
			continue
		}
		a := schema.AttrID(ai)
		var v schema.Value
		switch s.TypeOf(a) {
		case schema.TypeString:
			v = schema.StringValue(words[rng.Intn(len(words))])
		case schema.TypeInt:
			v = schema.IntValue(int64(rng.Intn(21)))
		case schema.TypeDate:
			v = schema.Value{Type: schema.TypeDate, Num: float64(rng.Intn(21))}
		default:
			v = schema.FloatValue(float64(rng.Intn(21)))
		}
		fields = append(fields, schema.Field{Attr: a, Value: v})
	}
	if len(fields) == 0 {
		fields = append(fields, schema.Field{Attr: 3, Value: schema.FloatValue(1)})
	}
	e, err := schema.EventFromFields(s, fields)
	if err != nil {
		panic(err)
	}
	return e
}

func randomArithmeticSubscription(rng *rand.Rand, s *schema.Schema) *schema.Subscription {
	priceID, _ := s.ID("price")
	lowID, _ := s.ID("low")
	attrs := []schema.AttrID{priceID, lowID}
	var cs []schema.Constraint
	for _, a := range attrs[:1+rng.Intn(2)] {
		lo := float64(rng.Intn(15))
		hi := lo + float64(rng.Intn(6))
		switch rng.Intn(3) {
		case 0:
			cs = append(cs, schema.Constraint{Attr: a, Op: schema.OpEQ, Value: schema.FloatValue(lo)})
		case 1:
			cs = append(cs,
				schema.Constraint{Attr: a, Op: schema.OpGT, Value: schema.FloatValue(lo)},
				schema.Constraint{Attr: a, Op: schema.OpLE, Value: schema.FloatValue(hi)})
		default:
			cs = append(cs, schema.Constraint{Attr: a, Op: schema.OpGE, Value: schema.FloatValue(lo)})
		}
	}
	sub, err := schema.NewSubscription(s, cs...)
	if err != nil {
		panic(err)
	}
	return sub
}

func randomArithmeticEvent(rng *rand.Rand, s *schema.Schema) *schema.Event {
	priceID, _ := s.ID("price")
	lowID, _ := s.ID("low")
	fields := []schema.Field{
		{Attr: priceID, Value: schema.FloatValue(float64(rng.Intn(25)))},
		{Attr: lowID, Value: schema.FloatValue(float64(rng.Intn(25)))},
	}
	e, err := schema.EventFromFields(s, fields)
	if err != nil {
		panic(err)
	}
	return e
}

// TestMatchKeysWithCost: the instrumented match returns the same keys as
// MatchKeys plus self-consistent Section 5.2.4 operation counts.
func TestMatchKeysWithCost(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(0, 1), mustSub(t, s, `price > 8 && price < 9 && symbol = OTE`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(0, 2), mustSub(t, s, `price > 8.2`)); err != nil {
		t.Fatal(err)
	}
	ev := mustEvent(t, s, `price=8.5 symbol=OTE volume=1`)
	keys, cost := sm.MatchKeysWithCost(ev)
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if cost.EventAttrs != 3 {
		t.Fatalf("EventAttrs = %d, want 3", cost.EventAttrs)
	}
	// price attribute collects ids {1,2}, symbol collects {1}: 3 entries.
	if cost.CollectedIDs != 3 {
		t.Fatalf("CollectedIDs = %d, want 3", cost.CollectedIDs)
	}
	if cost.UniqueIDs != 2 { // P = 2
		t.Fatalf("UniqueIDs = %d, want 2", cost.UniqueIDs)
	}
	if cost.Matched != 2 {
		t.Fatalf("Matched = %d, want 2", cost.Matched)
	}
	// Non-matching event: id 1 collected on symbol only, counter < c3.
	ev2 := mustEvent(t, s, `symbol=OTE`)
	keys2, cost2 := sm.MatchKeysWithCost(ev2)
	if len(keys2) != 0 || cost2.UniqueIDs != 1 || cost2.Matched != 0 {
		t.Fatalf("keys2 = %v cost2 = %+v", keys2, cost2)
	}
}
