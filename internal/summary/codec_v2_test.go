package summary

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
)

// randomSummary builds a summary with n random subscriptions spread over a
// handful of brokers, mimicking the per-broker id locality the v2 delta
// encoding exploits.
func randomSummary(t *testing.T, rng *rand.Rand, mode interval.Mode, n int) *Summary {
	t.Helper()
	s := stockSchema(t)
	sm := New(s, mode)
	for i := 0; i < n; i++ {
		sub := randomSubscription(rng, s)
		id := subid.ID{Broker: subid.BrokerID(rng.Intn(8)), Local: subid.LocalID(i)}
		if err := sm.Insert(id, sub); err != nil {
			t.Fatal(err)
		}
	}
	return sm
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		for _, n := range []int{0, 1, 10, 120} {
			sm := randomSummary(t, rng, mode, n)
			if got, want := sm.EncodedSize(), len(sm.Encode(nil)); got != want {
				t.Errorf("mode %v n=%d: EncodedSize = %d, len(Encode) = %d", mode, n, got, want)
			}
			if got, want := sm.EncodedSizeV1(), len(sm.EncodeV1(nil)); got != want {
				t.Errorf("mode %v n=%d: EncodedSizeV1 = %d, len(EncodeV1) = %d", mode, n, got, want)
			}
		}
	}
}

// TestCrossVersionRoundTrip: a summary decoded from its v1 wire form must
// be semantically equal to one decoded from v2 — identical canonical
// (v2) re-encoding and identical matching behaviour.
func TestCrossVersionRoundTrip(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(11))
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		sm := randomSummary(t, rng, mode, 100)
		canonical := sm.Encode(nil)

		fromV1, err := Decode(s, sm.EncodeV1(nil))
		if err != nil {
			t.Fatalf("mode %v: decode v1: %v", mode, err)
		}
		fromV2, err := Decode(s, canonical)
		if err != nil {
			t.Fatalf("mode %v: decode v2: %v", mode, err)
		}
		if !bytes.Equal(fromV1.Encode(nil), canonical) {
			t.Fatalf("mode %v: v1 round trip re-encodes differently", mode)
		}
		if !bytes.Equal(fromV2.Encode(nil), canonical) {
			t.Fatalf("mode %v: v2 round trip re-encodes differently", mode)
		}
		for i := 0; i < 300; i++ {
			ev := randomEvent(rng, s)
			want := sm.MatchKeys(ev)
			if !reflect.DeepEqual(fromV1.MatchKeys(ev), want) {
				t.Fatalf("mode %v: v1 decode diverges on %s", mode, ev.Format(s))
			}
			if !reflect.DeepEqual(fromV2.MatchKeys(ev), want) {
				t.Fatalf("mode %v: v2 decode diverges on %s", mode, ev.Format(s))
			}
		}
	}
}

// TestV2SmallerThanV1 checks the point of the exercise: on a workload
// with per-broker id locality, the varint delta encoding must shrink the
// wire form by a wide margin (the acceptance floor is 30%).
func TestV2SmallerThanV1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sm := randomSummary(t, rng, interval.Lossy, 200)
	v1, v2 := sm.EncodedSizeV1(), sm.EncodedSize()
	if v2 >= v1 {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", v2, v1)
	}
	if reduction := 1 - float64(v2)/float64(v1); reduction < 0.30 {
		t.Errorf("v2 reduction %.1f%% below the 30%% acceptance floor (v1=%d v2=%d)",
			100*reduction, v1, v2)
	}
}

// TestMergeEncodedEquivalentToDecodeMerge: folding a wire-form summary in
// directly must produce byte-identical state to Decode-then-Merge, for
// both wire versions, including repeated merges and self-merge.
func TestMergeEncodedEquivalentToDecodeMerge(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(17))
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		base := randomSummary(t, rng, mode, 80)
		other := randomSummary(t, rng, mode, 80)
		for _, encode := range []struct {
			name string
			wire []byte
		}{
			{"v2", other.Encode(nil)},
			{"v1", other.EncodeV1(nil)},
		} {
			viaDecode := base.Clone()
			decoded, err := Decode(s, encode.wire)
			if err != nil {
				t.Fatalf("mode %v %s: %v", mode, encode.name, err)
			}
			if err := viaDecode.Merge(decoded); err != nil {
				t.Fatalf("mode %v %s: Merge: %v", mode, encode.name, err)
			}
			direct := base.Clone()
			if err := direct.MergeEncoded(encode.wire); err != nil {
				t.Fatalf("mode %v %s: MergeEncoded: %v", mode, encode.name, err)
			}
			if !bytes.Equal(direct.Encode(nil), viaDecode.Encode(nil)) {
				t.Fatalf("mode %v %s: MergeEncoded state differs from Decode+Merge", mode, encode.name)
			}
			// Merging the same payload again must be idempotent, as Merge is.
			if err := direct.MergeEncoded(encode.wire); err != nil {
				t.Fatalf("mode %v %s: repeated MergeEncoded: %v", mode, encode.name, err)
			}
			if !bytes.Equal(direct.Encode(nil), viaDecode.Encode(nil)) {
				t.Fatalf("mode %v %s: repeated MergeEncoded not idempotent", mode, encode.name)
			}
		}
	}
}

// TestMergeEncodedIntoEmpty: merging into a fresh summary reproduces
// Decode exactly.
func TestMergeEncodedIntoEmpty(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(23))
	sm := randomSummary(t, rng, interval.Lossy, 60)
	wire := sm.Encode(nil)
	into := New(s, interval.Lossy)
	if err := into.MergeEncoded(wire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(into.Encode(nil), wire) {
		t.Fatal("MergeEncoded into empty summary differs from Decode")
	}
}

func TestMergeEncodedRejectsCorrupt(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(29))
	sm := randomSummary(t, rng, interval.Lossy, 20)
	wire := sm.Encode(nil)
	for cut := 0; cut < len(wire); cut += 5 {
		into := New(s, interval.Lossy)
		if err := into.MergeEncoded(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	into := New(s, interval.Lossy)
	if err := into.MergeEncoded(append(append([]byte(nil), wire...), 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestDecodeV2RejectsNonAscendingIDs: a zero delta (duplicate id) in a v2
// id list must be rejected, preserving the sorted-unique invariant.
func TestDecodeV2RejectsHostileCounts(t *testing.T) {
	s := stockSchema(t)
	// Handcraft a v2 header claiming a gigantic registry count with no
	// bytes behind it; the decoder must fail fast, not allocate.
	buf := []byte{'S', 'S', 'M', '2', byte(interval.Lossy),
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01} // uvarint 2^63-ish
	if _, err := Decode(s, buf); err == nil {
		t.Fatal("hostile registry count accepted")
	}
	into := New(s, interval.Lossy)
	if err := into.MergeEncoded(buf); err == nil {
		t.Fatal("hostile registry count accepted by MergeEncoded")
	}
}
