package summary

import (
	"bytes"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
)

// fuzzSeedSummary builds the seed summary used by the fuzz targets.
func fuzzSeedSummary(f *testing.F) *Summary {
	s := stockSchema(f)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(subid.ID{Broker: 1, Local: 2}, mustSub(f, s, `price > 8 && symbol = OTE`)); err != nil {
		f.Fatal(err)
	}
	if err := sm.Insert(subid.ID{Broker: 1, Local: 3}, mustSub(f, s, `price = 4 && exchange != NYSE`)); err != nil {
		f.Fatal(err)
	}
	return sm
}

// addCodecSeeds seeds f with both wire versions, truncations, and
// bit-flip corruptions of each (exercising corrupt varint deltas in v2 and
// corrupt fixed-width words in v1).
func addCodecSeeds(f *testing.F, sm *Summary) {
	for _, valid := range [][]byte{sm.Encode(nil), sm.EncodeV1(nil)} {
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		f.Add(valid[:len(valid)-1])
		corrupted := append([]byte(nil), valid...)
		for i := 5; i < len(corrupted); i += 7 {
			corrupted[i] ^= 0xFF
		}
		f.Add(corrupted)
		// High-bit smear turns small varints into multi-byte ones and
		// breaks delta monotonicity.
		smeared := append([]byte(nil), valid...)
		for i := 5; i < len(smeared); i += 3 {
			smeared[i] |= 0x80
		}
		f.Add(smeared)
	}
	f.Add([]byte{})
	f.Add([]byte("SSM1"))
	f.Add([]byte("SSM2"))
	f.Add([]byte("SSM3")) // unsupported future version
}

// FuzzDecode: the summary decoder (both wire versions) must never panic
// and must only accept inputs that re-encode to a stable canonical form.
// Run with `go test -fuzz=FuzzDecode` for exploration; the seed corpus
// runs in normal test mode.
func FuzzDecode(f *testing.F) {
	s := stockSchema(f)
	addCodecSeeds(f, fuzzSeedSummary(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		sm, err := Decode(s, data)
		if err != nil {
			return
		}
		// Accepted inputs must round-trip: the canonical (v2) re-encode
		// decodes again to the byte-identical encoding, and the v1
		// re-encode decodes to the same canonical form.
		canonical := sm.Encode(nil)
		again, err := Decode(s, canonical)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !bytes.Equal(again.Encode(nil), canonical) {
			t.Fatal("canonical encoding is not a fixpoint")
		}
		fromV1, err := Decode(s, sm.EncodeV1(nil))
		if err != nil {
			t.Fatalf("v1 re-encode of accepted input failed to decode: %v", err)
		}
		if !bytes.Equal(fromV1.Encode(nil), canonical) {
			t.Fatal("v1 round trip diverges from canonical form")
		}
	})
}

// FuzzMergeEncoded: folding arbitrary bytes into a live summary must
// never panic and must leave the summary in an encodable, decodable
// state (partial merges on corrupt input are allowed — they model a
// message lost mid-transfer — but never a corrupt structure). For
// canonical inputs the fold must agree byte-for-byte with Decode+Merge.
func FuzzMergeEncoded(f *testing.F) {
	s := stockSchema(f)
	seed := fuzzSeedSummary(f)
	addCodecSeeds(f, seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		into := seed.Clone()
		mergeErr := into.MergeEncoded(data)
		// Success or failure, the summary must still round-trip.
		if _, err := Decode(s, into.Encode(nil)); err != nil {
			t.Fatalf("summary corrupt after MergeEncoded (err=%v): %v", mergeErr, err)
		}

		decoded, err := Decode(s, data)
		if err != nil {
			return
		}
		if !bytes.Equal(decoded.Encode(nil), data) {
			return // accepted but non-canonical; ordering differences allowed
		}
		if mergeErr != nil {
			t.Fatalf("canonical input rejected by MergeEncoded: %v", mergeErr)
		}
		viaDecode := seed.Clone()
		if err := viaDecode.Merge(decoded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(into.Encode(nil), viaDecode.Encode(nil)) {
			t.Fatal("MergeEncoded diverges from Decode+Merge on canonical input")
		}
	})
}
