package summary

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
)

// FuzzDecode: the summary decoder must never panic and must only accept
// inputs that re-encode losslessly. Run with `go test -fuzz=FuzzDecode`
// for exploration; the seed corpus runs in normal test mode.
func FuzzDecode(f *testing.F) {
	s := stockSchema(f)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(subid.ID{Broker: 1, Local: 2}, mustSub(f, s, `price > 8 && symbol = OTE`)); err != nil {
		f.Fatal(err)
	}
	valid := sm.Encode(nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SSM1"))
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	for i := 5; i < len(corrupted); i += 7 {
		corrupted[i] ^= 0xFF
	}
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		sm, err := Decode(s, data)
		if err != nil {
			return
		}
		// Accepted inputs must round-trip to the identical encoding.
		again, err := Decode(s, sm.Encode(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if again.NumSubscriptions() != sm.NumSubscriptions() {
			t.Fatal("re-decode changed subscription count")
		}
	})
}
