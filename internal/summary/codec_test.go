package summary

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
)

func TestCodecRoundTripSmall(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(0, 1), mustSub(t, s, `exchange = "N*SE" && symbol = OTE && price < 8.70 && price > 8.30`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(0, 2), mustSub(t, s, `symbol >* OT && price = 8.20 && volume > 130000 && low < 8.05`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(3, 9), mustSub(t, s, `exchange != NYSE && price != 4`)); err != nil {
		t.Fatal(err)
	}
	buf := sm.Encode(nil)
	got, err := Decode(s, buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NumSubscriptions() != sm.NumSubscriptions() {
		t.Fatalf("subscriptions = %d, want %d", got.NumSubscriptions(), sm.NumSubscriptions())
	}
	if !reflect.DeepEqual(got.Stats(), sm.Stats()) {
		t.Fatalf("stats differ:\n got %+v\nwant %+v", got.Stats(), sm.Stats())
	}
	// Behavioural equivalence on a grid of probe events.
	events := []string{
		`exchange=NYSE symbol=OTE price=8.40 volume=132700 low=8.22`,
		`exchange=LSE symbol=OTE price=8.20 volume=140000 low=8.00`,
		`price=4`,
		`price=5 exchange=OSE`,
		`symbol=OTX price=8.5`,
	}
	for _, etext := range events {
		ev := mustEvent(t, s, etext)
		if !reflect.DeepEqual(got.MatchKeys(ev), sm.MatchKeys(ev)) {
			t.Fatalf("event %q: decoded %v, original %v", etext, got.MatchKeys(ev), sm.MatchKeys(ev))
		}
	}
	// Deterministic encoding.
	if !reflect.DeepEqual(sm.Encode(nil), buf) {
		t.Fatal("encoding not deterministic")
	}
}

func TestCodecRoundTripRandomized(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(31))
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		sm := New(s, mode)
		for i := 0; i < 150; i++ {
			sub := randomSubscription(rng, s)
			if err := sm.Insert(subid.ID{Broker: subid.BrokerID(rng.Intn(10)), Local: subid.LocalID(i)}, sub); err != nil {
				t.Fatal(err)
			}
		}
		buf := sm.Encode(nil)
		got, err := Decode(s, buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		for i := 0; i < 500; i++ {
			ev := randomEvent(rng, s)
			if !reflect.DeepEqual(got.MatchKeys(ev), sm.MatchKeys(ev)) {
				t.Fatalf("mode %v: decoded summary diverges on %s", mode, ev.Format(s))
			}
		}
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(0, 1), mustSub(t, s, `price > 8 && symbol = OTE`)); err != nil {
		t.Fatal(err)
	}
	buf := sm.Encode(nil)
	if _, err := Decode(s, nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, err := Decode(s, buf[:3]); err == nil {
		t.Fatal("short magic accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 'X'
	if _, err := Decode(s, bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), buf...)
	bad[4] = 99 // mode
	if _, err := Decode(s, bad); err == nil {
		t.Fatal("bad mode accepted")
	}
	for cut := 5; cut < len(buf); cut += 7 {
		if _, err := Decode(s, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(s, append(append([]byte(nil), buf...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEncodeAppendsToPrefix(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(0, 1), mustSub(t, s, `price > 8`)); err != nil {
		t.Fatal(err)
	}
	prefix := []byte{1, 2, 3}
	buf := sm.Encode(prefix)
	if !reflect.DeepEqual(buf[:3], prefix) {
		t.Fatal("prefix clobbered")
	}
	if _, err := Decode(s, buf[3:]); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySummaryRoundTrip(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Exact)
	got, err := Decode(s, sm.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSubscriptions() != 0 || got.Mode() != interval.Exact {
		t.Fatalf("got %d subs, mode %v", got.NumSubscriptions(), got.Mode())
	}
}
