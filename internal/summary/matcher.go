package summary

import (
	"slices"
	"sync"

	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// Matcher runs Algorithm 1 against one Summary with zero steady-state
// allocations. It replaces Summary.MatchKeysWithCost's per-event counter
// maps with dense scratch arrays keyed by the summary's id registry index,
// and collects per-attribute id lists through the structures' append-style
// fast paths (interval.Set.AppendMatches, strmatch.Set.AppendMatches)
// instead of map sinks.
//
// A Matcher must not be used concurrently with itself or with mutations of
// its summary, but any number of matchers may match concurrently against
// the same summary (see MatcherPool). The summary should satisfy Validate:
// ids referenced by rows but absent from the registry — possible only in
// hand-built or corrupt summaries — are counted by the map-based path's
// CollectedIDs/UniqueIDs yet skipped here.
type Matcher struct {
	sm *Summary

	// token is a monotonically increasing epoch: one tick per event plus
	// one per event attribute with matches. mark[i] records the token at
	// which dense id i was last counted, so "already counted for this
	// attribute" is mark[i] == attrToken and "first sighting this event"
	// is mark[i] < eventToken — no clearing between events.
	token   uint64
	mark    []uint64
	count   []int32
	touched []int32  // dense ids seen this event, in first-seen order
	buf     []uint64 // per-attribute id-list collection scratch
	out     []uint64 // matched keys of the last call

	obs *MatcherObs // optional cost instrumentation; nil = one branch per event
}

// MatcherObs aggregates the Section 5.2.4 operation counts of every match
// into registry counters: Events counts matched events, Collected the
// per-attribute id-list entries examined, and Matched the ids that
// reached their c3 attribute count (the summary filter hits forwarded for
// exact re-matching). All fields are optional; nil counters are skipped.
type MatcherObs struct {
	Events    *metrics.Counter
	Collected *metrics.Counter
	Matched   *metrics.Counter
}

// SetObs attaches cost instrumentation to the matcher (nil detaches).
// When detached the steady-state overhead is a single nil check per
// event, preserving the matcher's zero-allocation hot path.
func (m *Matcher) SetObs(obs *MatcherObs) { m.obs = obs }

// NewMatcher returns a Matcher bound to sm.
func (sm *Summary) NewMatcher() *Matcher {
	return &Matcher{sm: sm}
}

// Summary returns the summary the matcher is bound to.
func (m *Matcher) Summary() *Summary { return m.sm }

// Match is Summary.Match run through the matcher's reusable scratch. The
// returned ids are freshly allocated and owned by the caller.
func (m *Matcher) Match(e *schema.Event) []subid.ID {
	keys := m.MatchKeys(e)
	out := make([]subid.ID, len(keys))
	for i, key := range keys {
		out[i] = m.sm.idFromKey(key)
	}
	return out
}

// MatchKeys returns the matched id keys in ascending order. The slice is
// scratch owned by the matcher, valid until the next call.
func (m *Matcher) MatchKeys(e *schema.Event) []uint64 {
	keys, _ := m.MatchKeysWithCost(e)
	return keys
}

// MatchKeysWithCost is MatchKeys with the Section 5.2.4 operation counts.
// Keys and cost are identical to Summary.MatchKeysWithCost's, without the
// per-event map allocations.
func (m *Matcher) MatchKeysWithCost(e *schema.Event) ([]uint64, MatchCost) {
	sm := m.sm
	if n := len(sm.keys); len(m.mark) < n {
		// The registry grew (or this is the first event): extend the dense
		// scratch. Fresh slots are zero, which every token treats as stale.
		m.mark = append(m.mark, make([]uint64, n-len(m.mark))...)
		m.count = append(m.count, make([]int32, n-len(m.count))...)
	}
	var cost MatchCost
	m.token++
	eventToken := m.token
	m.touched = m.touched[:0]
	for _, f := range e.Fields() {
		// Step 1: collect satisfied id lists for this attribute.
		cost.EventAttrs++
		m.buf = m.buf[:0]
		if f.Value.Arithmetic() {
			if s, ok := sm.aacs[f.Attr]; ok {
				m.buf = s.AppendMatches(m.buf, f.Value.Num)
			}
		} else if s, ok := sm.sacs[f.Attr]; ok {
			m.buf = s.AppendMatches(m.buf, f.Value.Str)
		}
		if len(m.buf) == 0 {
			continue
		}
		m.token++
		attrToken := m.token
		for _, key := range m.buf {
			idx, ok := sm.ids[key]
			if !ok {
				continue // unregistered id; see the type comment
			}
			if m.mark[idx] == attrToken {
				continue // already counted for this attribute
			}
			if m.mark[idx] < eventToken {
				m.count[idx] = 0
				m.touched = append(m.touched, idx)
			}
			m.mark[idx] = attrToken
			m.count[idx]++
			cost.CollectedIDs++
		}
	}
	// Step 2: keep ids whose counter equals their c3 attribute count.
	cost.UniqueIDs = len(m.touched)
	m.out = m.out[:0]
	for _, idx := range m.touched {
		if m.count[idx] == sm.targets[idx] {
			m.out = append(m.out, sm.keys[idx])
		}
	}
	slices.Sort(m.out)
	cost.Matched = len(m.out)
	if m.obs != nil {
		if m.obs.Events != nil {
			m.obs.Events.Inc()
		}
		if m.obs.Collected != nil {
			m.obs.Collected.Add(int64(cost.CollectedIDs))
		}
		if m.obs.Matched != nil {
			m.obs.Matched.Add(int64(cost.Matched))
		}
	}
	return m.out, cost
}

// MatcherPool pools Matchers bound to one summary for concurrent event
// sweeps: each worker Gets a matcher, matches a batch, and Puts it back,
// reusing scratch state across events and workers without locking.
type MatcherPool struct {
	pool sync.Pool
}

// NewMatcherPool returns a pool whose matchers are bound to sm.
func NewMatcherPool(sm *Summary) *MatcherPool {
	p := &MatcherPool{}
	p.pool.New = func() any { return sm.NewMatcher() }
	return p
}

// Get returns a matcher bound to the pool's summary.
func (p *MatcherPool) Get() *Matcher { return p.pool.Get().(*Matcher) }

// Put returns m to the pool.
func (p *MatcherPool) Put(m *Matcher) { p.pool.Put(m) }
