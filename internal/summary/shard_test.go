package summary

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/workload"
)

// shardFixture builds a CW24-shaped summary (24 brokers × σ random
// subscriptions over the stock schema) plus a batch of random events.
// Same generator family as the matcher differential tests, so a healthy
// fraction of the events actually match.
func shardFixture(t testing.TB, sigma, nEvents int, seed int64) (*Summary, []*schema.Event) {
	t.Helper()
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(seed))
	sm := New(s, interval.Lossy)
	for i := 0; i < 24*sigma; i++ {
		id := subid.ID{Broker: subid.BrokerID(i % 24), Local: subid.LocalID(i / 24)}
		if err := sm.Insert(id, randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
	}
	events := make([]*schema.Event, nEvents)
	for i := range events {
		events[i] = randomEvent(rng, s)
	}
	return sm, events
}

// TestShardByKeyPartition proves ShardByKey is an exact partition: every
// id lands in exactly one shard, and shard key ranges are disjoint and
// ascending (the property concatenation-order determinism rests on).
func TestShardByKeyPartition(t *testing.T) {
	sm, _ := shardFixture(t, 20, 0, 41)
	for _, n := range []int{1, 2, 3, 4, 8, 17} {
		shards := sm.ShardByKey(n)
		if len(shards) != n {
			t.Fatalf("ShardByKey(%d) returned %d shards", n, len(shards))
		}
		var all []uint64
		prevMax := uint64(0)
		first := true
		for si, sh := range shards {
			keys := append([]uint64(nil), sh.keys...)
			slices.Sort(keys)
			if len(keys) == 0 {
				t.Fatalf("shard %d/%d is empty", si, n)
			}
			if !first && keys[0] <= prevMax {
				t.Fatalf("shard %d min key %d not above previous shard max %d", si, keys[0], prevMax)
			}
			prevMax = keys[len(keys)-1]
			first = false
			all = append(all, keys...)
		}
		want := append([]uint64(nil), sm.keys...)
		slices.Sort(want)
		slices.Sort(all)
		if !slices.Equal(all, want) {
			t.Fatalf("shards of %d do not partition the id set: %d ids vs %d", n, len(all), len(want))
		}
	}
}

// TestShardInvariance is the differential determinism test: the sharded
// matcher must produce byte-identical match sets to the unsharded matcher
// at every shard count, over both the single-event and the batched entry
// points.
func TestShardInvariance(t *testing.T) {
	sm, events := shardFixture(t, 100, 1000, 42)
	ref := sm.NewMatcher()
	want := make([][]uint64, len(events))
	for i, ev := range events {
		want[i] = append([]uint64(nil), ref.MatchKeys(ev)...)
	}
	total := 0
	for _, w := range want {
		total += len(w)
	}
	if total == 0 {
		t.Fatal("workload produced zero matches; the test would be vacuous")
	}
	for _, n := range []int{1, 2, 4, 8} {
		m := NewShardedMatcher(sm.ShardByKey(n))
		for i, ev := range events {
			if got := m.MatchKeys(ev); !slices.Equal(got, want[i]) {
				t.Fatalf("shards=%d event %d: MatchKeys diverged (%d vs %d keys)", n, i, len(got), len(want[i]))
			}
		}
		// Batched path, including the parallel fan-out when cores allow.
		for lo := 0; lo < len(events); lo += 64 {
			hi := min(lo+64, len(events))
			res := m.MatchBatch(events[lo:hi])
			for i, keys := range res {
				if !slices.Equal(keys, want[lo+i]) {
					t.Fatalf("shards=%d batch event %d: MatchBatch diverged", n, lo+i)
				}
			}
		}
	}
}

// TestShardedMatchIDs checks Match recovers full ids (with c3 masks) in
// the same order as the unsharded path.
func TestShardedMatchIDs(t *testing.T) {
	sm, events := shardFixture(t, 50, 100, 43)
	m := NewShardedMatcher(sm.ShardByKey(4))
	for _, ev := range events {
		want := sm.Match(ev)
		got := m.Match(ev)
		if len(got) != len(want) {
			t.Fatalf("Match returned %d ids, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Key() != want[i].Key() || !got[i].Attrs.Equal(want[i].Attrs) {
				t.Fatalf("id %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

// TestShardedMatcherZeroAllocs proves the serial sharded fast path keeps
// the matcher's zero-steady-state-allocation guarantee.
func TestShardedMatcherZeroAllocs(t *testing.T) {
	sm, events := shardFixture(t, 100, 64, 44)
	m := NewShardedMatcher(sm.ShardByKey(4))
	for _, ev := range events { // warm scratch
		m.MatchKeys(ev)
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, ev := range events {
			m.MatchKeys(ev)
		}
	})
	if avg != 0 {
		t.Fatalf("sharded MatchKeys allocates %.1f allocs per 64-event sweep, want 0", avg)
	}
	// Serial batches (below the parallel fan-out threshold) must stay
	// allocation-free too; the parallel path's goroutine bookkeeping is
	// amortized per batch, not per event, so it is exempt here.
	small := events[:batchParallelMin-1]
	m.MatchBatch(small) // warm batch scratch
	avg = testing.AllocsPerRun(200, func() {
		m.MatchBatch(small)
	})
	if avg != 0 {
		t.Fatalf("serial MatchBatch allocates %.1f allocs per batch, want 0", avg)
	}
}

// TestShardByKeyEdgeCases covers empty summaries and n above the id count.
func TestShardByKeyEdgeCases(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty := New(gen.Schema(), interval.Lossy)
	shards := empty.ShardByKey(8)
	if len(shards) != 1 || shards[0].NumSubscriptions() != 0 {
		t.Fatalf("empty summary should shard to one empty shard, got %d", len(shards))
	}
	three := New(gen.Schema(), interval.Lossy)
	for i := 0; i < 3; i++ {
		id := subid.ID{Broker: 0, Local: subid.LocalID(i)}
		if err := three.Insert(id, gen.Subscription()); err != nil {
			t.Fatal(err)
		}
	}
	shards = three.ShardByKey(8)
	if len(shards) != 3 {
		t.Fatalf("3-id summary sharded to %d shards, want clamp to 3", len(shards))
	}
}
