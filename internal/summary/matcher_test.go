package summary

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// buildRandomSummary inserts n random subscriptions for broker 1, then
// churns a fraction of them (remove) and merges in a second broker's
// summary, so the registry has seen swap-deletes and merge registration.
func buildRandomSummary(t testing.TB, rng *rand.Rand, s *schema.Schema, mode interval.Mode, n int) *Summary {
	t.Helper()
	sm := New(s, mode)
	for i := 0; i < n; i++ {
		if err := sm.Insert(subid.ID{Broker: 1, Local: subid.LocalID(i)}, randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/5; i++ {
		sm.Remove(subid.ID{Broker: 1, Local: subid.LocalID(rng.Intn(n))})
	}
	other := New(s, mode)
	for i := 0; i < n/3; i++ {
		if err := other.Insert(subid.ID{Broker: 2, Local: subid.LocalID(i)}, randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sm.Merge(other); err != nil {
		t.Fatal(err)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	return sm
}

// TestMatcherMatchesLegacy is the differential property test: across
// randomized workloads the pooled Matcher must report byte-identical key
// sets and identical MatchCost to the map-based MatchKeysWithCost.
func TestMatcherMatchesLegacy(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(31))
	events := 0
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		for trial := 0; trial < 6; trial++ {
			sm := buildRandomSummary(t, rng, s, mode, 60+rng.Intn(60))
			m := sm.NewMatcher()
			for probe := 0; probe < 150; probe++ {
				ev := randomEvent(rng, s)
				events++
				wantKeys, wantCost := sm.MatchKeysWithCost(ev)
				gotKeys, gotCost := m.MatchKeysWithCost(ev)
				if !equalKeys(wantKeys, gotKeys) {
					t.Fatalf("mode %v trial %d: keys diverge on %s\nlegacy  %v\nmatcher %v",
						mode, trial, ev.Format(s), wantKeys, gotKeys)
				}
				if wantCost != gotCost {
					t.Fatalf("mode %v trial %d: cost diverges on %s\nlegacy  %+v\nmatcher %+v",
						mode, trial, ev.Format(s), wantCost, gotCost)
				}
			}
			// Mutating the summary mid-stream must not confuse the matcher's
			// dense scratch (registry growth and swap-deletes).
			if err := sm.Insert(subid.ID{Broker: 3, Local: 1}, randomSubscription(rng, s)); err != nil {
				t.Fatal(err)
			}
			sm.Remove(subid.ID{Broker: 1, Local: 0})
			for probe := 0; probe < 50; probe++ {
				ev := randomEvent(rng, s)
				events++
				wantKeys, _ := sm.MatchKeysWithCost(ev)
				gotKeys, _ := m.MatchKeysWithCost(ev)
				if !equalKeys(wantKeys, gotKeys) {
					t.Fatalf("mode %v trial %d post-mutation: keys diverge on %s", mode, trial, ev.Format(s))
				}
			}
		}
	}
	if events < 1000 {
		t.Fatalf("differential test covered only %d events, want ≥1000", events)
	}
}

// TestMatcherMatchIDs checks the id-reconstructing entry point against
// Summary.Match.
func TestMatcherMatchIDs(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(32))
	sm := buildRandomSummary(t, rng, s, interval.Lossy, 80)
	m := sm.NewMatcher()
	for probe := 0; probe < 200; probe++ {
		ev := randomEvent(rng, s)
		if want, got := sm.Match(ev), m.Match(ev); !reflect.DeepEqual(want, got) {
			t.Fatalf("Match diverges on %s:\nlegacy  %v\nmatcher %v", ev.Format(s), want, got)
		}
	}
}

// TestMatcherPoolConcurrent runs pooled matchers from many goroutines
// against one shared summary and checks every result against the serial
// answer. Run under -race this also exercises the SACS index's lazy build
// from concurrent readers.
func TestMatcherPoolConcurrent(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(33))
	sm := buildRandomSummary(t, rng, s, interval.Lossy, 120)
	const nEvents = 400
	events := make([]*schema.Event, nEvents)
	want := make([][]uint64, nEvents)
	for i := range events {
		events[i] = randomEvent(rng, s)
		want[i] = append([]uint64(nil), sm.MatchKeys(events[i])...)
	}
	pool := NewMatcherPool(sm)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := g; i < nEvents; i += 8 {
					m := pool.Get()
					got := m.MatchKeys(events[i])
					if !equalKeys(want[i], got) {
						t.Errorf("goroutine %d event %d: got %v want %v", g, i, got, want[i])
					}
					pool.Put(m)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMatcherZeroAllocs asserts the acceptance criterion: once warmed up,
// a matcher does not allocate per matched event.
func TestMatcherZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(34))
	sm := buildRandomSummary(t, rng, s, interval.Lossy, 150)
	events := make([]*schema.Event, 64)
	for i := range events {
		events[i] = randomEvent(rng, s)
	}
	m := sm.NewMatcher()
	matched := 0
	for _, ev := range events { // warm up scratch capacity
		matched += len(m.MatchKeys(ev))
	}
	if matched == 0 {
		t.Fatal("workload produced no matches; allocation assertion would be vacuous")
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		m.MatchKeys(events[i%len(events)])
		i++
	})
	if avg != 0 {
		t.Fatalf("Matcher.MatchKeys allocates %.2f objects per event, want 0", avg)
	}
}

func equalKeys(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// benchMatcher builds the warmed matcher + event set the hot-path
// benchmarks share. The zero-alloc promise these benchmarks defend is
// gated in CI (benchcheck -alloczero), so their names are load-bearing.
func benchMatcher(b *testing.B, withObs bool) (*Matcher, []*schema.Event) {
	b.Helper()
	s := stockSchema(b)
	rng := rand.New(rand.NewSource(34))
	sm := buildRandomSummary(b, rng, s, interval.Lossy, 150)
	events := make([]*schema.Event, 64)
	for i := range events {
		events[i] = randomEvent(rng, s)
	}
	m := sm.NewMatcher()
	if withObs {
		reg := metrics.NewRegistry()
		m.SetObs(&MatcherObs{
			Events:    reg.Counter("match_events"),
			Collected: reg.Counter("match_collected"),
			Matched:   reg.Counter("match_matched"),
		})
	}
	for _, ev := range events { // warm up scratch capacity
		m.MatchKeys(ev)
	}
	return m, events
}

// BenchmarkMatcherMatchKeys is the summary-match hot path: CI gates this
// benchmark at 0 allocs/op.
func BenchmarkMatcherMatchKeys(b *testing.B) {
	m, events := benchMatcher(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchKeys(events[i%len(events)])
	}
}

// BenchmarkMatcherMatchKeysInstrumented is the same path with the cost
// observers attached — health instrumentation must not reintroduce
// allocations, so CI gates this one at 0 allocs/op too.
func BenchmarkMatcherMatchKeysInstrumented(b *testing.B) {
	m, events := benchMatcher(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchKeys(events[i%len(events)])
	}
}
