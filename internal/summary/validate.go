package summary

import (
	"fmt"

	"github.com/subsum/subsum/internal/schema"
)

// Validate checks the summary's cross-structure invariants; tests call it
// after mutation sequences. It verifies that every id referenced by an
// AACS or SACS row is registered (with a c3 mask whose bit for that
// attribute is set), and that every registered id appears in at least one
// per-attribute structure.
func (sm *Summary) Validate() error {
	sm.purgeDead()
	// Dense-registry consistency: ids, keys, masks, and targets describe
	// the same set of subscriptions, with targets caching the mask counts.
	if len(sm.keys) != len(sm.ids) || len(sm.masks) != len(sm.keys) || len(sm.targets) != len(sm.keys) {
		return fmt.Errorf("summary: registry slices out of sync (%d ids, %d keys, %d masks, %d targets)",
			len(sm.ids), len(sm.keys), len(sm.masks), len(sm.targets))
	}
	for i, key := range sm.keys {
		if j, ok := sm.ids[key]; !ok || int(j) != i {
			return fmt.Errorf("summary: registry index for id %d is stale", key)
		}
		if int(sm.targets[i]) != sm.masks[i].Count() {
			return fmt.Errorf("summary: cached target for id %d is %d, mask has %d", key, sm.targets[i], sm.masks[i].Count())
		}
	}
	seen := make(map[uint64]bool, len(sm.ids))
	check := func(attr schema.AttrID, ids []uint64) error {
		for _, key := range ids {
			i, ok := sm.ids[key]
			if !ok {
				return fmt.Errorf("summary: attribute %d references unregistered id %d", attr, key)
			}
			if !sm.masks[i].Has(int(attr)) {
				return fmt.Errorf("summary: id %d in attribute %d rows but c3 bit unset", key, attr)
			}
			seen[key] = true
		}
		return nil
	}
	for attr, s := range sm.aacs {
		for _, r := range s.Rows() {
			if err := check(attr, r.IDs); err != nil {
				return err
			}
		}
		for _, e := range s.EqRows() {
			if err := check(attr, e.IDs); err != nil {
				return err
			}
		}
		for _, e := range s.NeRows() {
			if err := check(attr, e.IDs); err != nil {
				return err
			}
		}
	}
	for attr, s := range sm.sacs {
		for _, r := range s.Rows() {
			if err := check(attr, r.IDs); err != nil {
				return err
			}
		}
		for _, r := range s.NeRows() {
			if err := check(attr, r.IDs); err != nil {
				return err
			}
		}
	}
	for key := range sm.ids {
		if !seen[key] {
			return fmt.Errorf("summary: registered id %d appears in no structure", key)
		}
	}
	return nil
}
