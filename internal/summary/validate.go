package summary

import (
	"fmt"

	"github.com/subsum/subsum/internal/schema"
)

// Validate checks the summary's cross-structure invariants; tests call it
// after mutation sequences. It verifies that every id referenced by an
// AACS or SACS row is registered (with a c3 mask whose bit for that
// attribute is set), and that every registered id appears in at least one
// per-attribute structure.
func (sm *Summary) Validate() error {
	seen := make(map[uint64]bool, len(sm.ids))
	check := func(attr schema.AttrID, ids []uint64) error {
		for _, key := range ids {
			mask, ok := sm.ids[key]
			if !ok {
				return fmt.Errorf("summary: attribute %d references unregistered id %d", attr, key)
			}
			if !mask.Has(int(attr)) {
				return fmt.Errorf("summary: id %d in attribute %d rows but c3 bit unset", key, attr)
			}
			seen[key] = true
		}
		return nil
	}
	for attr, s := range sm.aacs {
		for _, r := range s.Rows() {
			if err := check(attr, r.IDs); err != nil {
				return err
			}
		}
		for _, e := range s.EqRows() {
			if err := check(attr, e.IDs); err != nil {
				return err
			}
		}
		for _, e := range s.NeRows() {
			if err := check(attr, e.IDs); err != nil {
				return err
			}
		}
	}
	for attr, s := range sm.sacs {
		for _, r := range s.Rows() {
			if err := check(attr, r.IDs); err != nil {
				return err
			}
		}
		for _, r := range s.NeRows() {
			if err := check(attr, r.IDs); err != nil {
				return err
			}
		}
	}
	for key := range sm.ids {
		if !seen[key] {
			return fmt.Errorf("summary: registered id %d appears in no structure", key)
		}
	}
	return nil
}
