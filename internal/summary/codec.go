package summary

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/strmatch"
	"github.com/subsum/subsum/internal/subid"
)

// Binary wire codec for summaries. This is what brokers actually exchange
// in the TCP daemon and what netsim counts when measuring real (not
// modelled) bytes.
//
// Two wire versions share one layout skeleton; the fourth magic byte is
// the version. v1 ("SSM1") is the original fixed-width format; v2
// ("SSM2") is the bandwidth-lean format: id keys and id lists travel
// sorted and delta-encoded as uvarints (ids owned by one broker share the
// c1 high bits, so consecutive deltas are tiny), and c3 mask words are
// uvarints (attribute counts are small, so high words are zero). Floats,
// section counts, and row counts are unchanged. Encode emits v2; Decode
// accepts both.
//
// Shared layout (little endian; "ids" and starred fields differ per
// version as noted):
//
//	magic "SSM", version byte '1' | '2', mode u8
//	id registry:  count u32 | *uvarint, then per id (v2: sorted by key):
//	    key u64 | *uvarint delta from previous key (first key verbatim)
//	    words u8, word u64 ×words | *uvarint ×words
//	AACS section: count u16, per attribute:
//	    attr u16
//	    ranges u32 × {lo f64, hi f64, flags u8, ids}
//	    eqs    u32 × {val f64, ids}
//	    nes    u32 × {val f64, ids}
//	SACS section: count u16, per attribute:
//	    attr u16
//	    rows u32 × {op u8, textLen u16, text, ids}
//	    nes  u32 × {textLen u16, text, ids}
//
// where ids is, in v1, count u32 followed by that many u64 keys and, in
// v2, count uvarint followed by the first key as a uvarint and count-1
// strictly positive uvarint deltas (the list is sorted ascending).
//
// v3 ("SSM3") extends v2 with one trailing section — the retraction set:
//
//	retraction section: ids (v2 encoding — count uvarint, delta keys)
//
// listing the id keys whose subscriptions were withdrawn since the
// summary's baseline. A receiver merges the v2 body, then removes every
// retracted key from its own structures and retains the set for onward
// propagation. Encode emits v3 only when the summary carries retractions,
// so churn-free payloads remain byte-identical to v2 and v2-only decoders
// interoperate until the first retraction; Decode accepts all three
// versions behind the version byte.
const (
	versionV1 = '1'
	versionV2 = '2'
	versionV3 = '3'
)

var magicPrefix = [3]byte{'S', 'S', 'M'}

// Encode appends the summary's wire form to buf: version 2, or version 3
// when the summary carries pending retractions (the only layout change is
// the trailing retraction section).
func (sm *Summary) Encode(buf []byte) []byte { return sm.encode(buf, sm.wireVersion()) }

// wireVersion picks the lowest wire version able to carry the summary.
func (sm *Summary) wireVersion() byte {
	if len(sm.retract) > 0 {
		return versionV3
	}
	return versionV2
}

// EncodeV1 appends the summary's legacy fixed-width wire form to buf, for
// interoperating with peers that predate the v2 codec. v1 predates
// retractions; a pending-retraction set is not representable and is
// omitted.
func (sm *Summary) EncodeV1(buf []byte) []byte { return sm.encode(buf, versionV1) }

func (sm *Summary) encode(buf []byte, version byte) []byte {
	sm.purgeDead() // tombstoned rows must never reach the wire
	buf = append(buf, magicPrefix[:]...)
	buf = append(buf, version, byte(sm.mode))

	// Registry, sorted by key for determinism (and, in v2, for the delta
	// encoding).
	keys := append([]uint64(nil), sm.keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if version == versionV1 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
	}
	prev := uint64(0)
	for i, key := range keys {
		if version == versionV1 {
			buf = binary.LittleEndian.AppendUint64(buf, key)
		} else if i == 0 {
			buf = binary.AppendUvarint(buf, key)
		} else {
			buf = binary.AppendUvarint(buf, key-prev)
		}
		prev = key
		mask := sm.maskOf(key)
		buf = append(buf, byte(len(mask)))
		for _, w := range mask {
			if version == versionV1 {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			} else {
				buf = binary.AppendUvarint(buf, w)
			}
		}
	}

	// AACS section.
	aattrs := sortedAttrs(sm.aacs)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(aattrs)))
	for _, a := range aattrs {
		s := sm.aacs[a]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(a))
		rows := s.Rows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
		for _, r := range rows {
			buf = appendFloat(buf, r.Interval.Lo)
			buf = appendFloat(buf, r.Interval.Hi)
			var flags byte
			if r.Interval.LoOpen {
				flags |= 1
			}
			if r.Interval.HiOpen {
				flags |= 2
			}
			buf = append(buf, flags)
			buf = appendIDs(buf, r.IDs, version)
		}
		buf = appendEqRows(buf, s.EqRows(), version)
		buf = appendEqRows(buf, s.NeRows(), version)
	}

	// SACS section.
	sattrs := sortedAttrs(sm.sacs)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sattrs)))
	for _, a := range sattrs {
		s := sm.sacs[a]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(a))
		rows := s.Rows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
		for _, r := range rows {
			buf = append(buf, byte(r.Pattern.Op))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Pattern.Text)))
			buf = append(buf, r.Pattern.Text...)
			buf = appendIDs(buf, r.IDs, version)
		}
		nes := s.NeRows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nes)))
		for _, r := range nes {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Pattern.Text)))
			buf = append(buf, r.Pattern.Text...)
			buf = appendIDs(buf, r.IDs, version)
		}
	}

	// Retraction section (v3 only).
	if version == versionV3 {
		buf = appendIDs(buf, sm.Retractions(), version)
	}
	return buf
}

// EncodedSize returns the size in bytes of the wire form Encode would
// emit, computed directly — no encode buffer is built.
func (sm *Summary) EncodedSize() int { return sm.encodedSize(sm.wireVersion()) }

// EncodedSizeV1 returns the size in bytes of the summary's legacy v1 wire
// form, computed directly.
func (sm *Summary) EncodedSizeV1() int { return sm.encodedSize(versionV1) }

func (sm *Summary) encodedSize(version byte) int {
	sm.purgeDead() // size the same rows encode will write
	n := 5 // magic + version + mode
	if version == versionV1 {
		n += 4 // registry count u32
		for i := range sm.keys {
			n += 8 + 1 + 8*len(sm.masks[i])
		}
	} else {
		n += uvarintLen(uint64(len(sm.keys)))
		// Key deltas depend on sorted order.
		keys := append([]uint64(nil), sm.keys...)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		prev := uint64(0)
		for i, key := range keys {
			if i == 0 {
				n += uvarintLen(key)
			} else {
				n += uvarintLen(key - prev)
			}
			prev = key
			n++ // words u8
			for _, w := range sm.maskOf(key) {
				n += uvarintLen(w)
			}
		}
	}

	n += 2 // AACS count
	for _, s := range sm.aacs {
		n += 2 + 4 + 4 + 4 // attr + three row counts
		for _, r := range s.Rows() {
			n += 17 + idsLen(r.IDs, version) // lo + hi + flags + ids
		}
		for _, r := range s.EqRows() {
			n += 8 + idsLen(r.IDs, version)
		}
		for _, r := range s.NeRows() {
			n += 8 + idsLen(r.IDs, version)
		}
	}

	n += 2 // SACS count
	for _, s := range sm.sacs {
		n += 2 + 4 + 4 // attr + two row counts
		for _, r := range s.Rows() {
			n += 3 + len(r.Pattern.Text) + idsLen(r.IDs, version)
		}
		for _, r := range s.NeRows() {
			n += 2 + len(r.Pattern.Text) + idsLen(r.IDs, version)
		}
	}
	if version == versionV3 {
		n += idsLen(sm.Retractions(), version)
	}
	return n
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// idsLen returns the encoded size of an id list without building it.
func idsLen(ids []uint64, version byte) int {
	if version == versionV1 {
		return 4 + 8*len(ids)
	}
	n := uvarintLen(uint64(len(ids)))
	prev := uint64(0)
	for i, id := range ids {
		if i == 0 {
			n += uvarintLen(id)
		} else {
			n += uvarintLen(id - prev)
		}
		prev = id
	}
	return n
}

func sortedAttrs[T any](m map[schema.AttrID]T) []schema.AttrID {
	out := make([]schema.AttrID, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// appendIDs writes an id list. Stored id lists are sorted ascending
// without duplicates (the structures' insertion invariant); appendIDs
// falls back to sorting a scratch copy if handed a list that is not, so
// v2 output is always well-formed.
func appendIDs(buf []byte, ids []uint64, version byte) []byte {
	if version == versionV1 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
		return buf
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		sorted := append([]uint64(nil), ids...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ids = sorted
	}
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := uint64(0)
	for i, id := range ids {
		if i == 0 {
			buf = binary.AppendUvarint(buf, id)
		} else {
			buf = binary.AppendUvarint(buf, id-prev)
		}
		prev = id
	}
	return buf
}

func appendEqRows(buf []byte, rows []interval.EqView, version byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		buf = appendFloat(buf, r.Value)
		buf = appendIDs(buf, r.IDs, version)
	}
	return buf
}

// decoder is a bounds-checked cursor over an encoded summary.
type decoder struct {
	buf     []byte
	off     int
	version byte
	err     error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("summary: "+format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 {
	v := math.Float64frombits(d.u64())
	if math.IsNaN(v) {
		// NaN compares false against everything, which would corrupt the
		// sorted row invariants downstream; no encoder emits it.
		d.fail("NaN float at offset %d", d.off)
	}
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads an id/registry element count bounded by the remaining
// buffer, where each remaining element occupies at least minBytes bytes —
// a corrupt length can therefore never trigger a huge allocation.
func (d *decoder) count(minBytes int) int {
	var n uint64
	if d.version == versionV1 {
		n = uint64(d.u32())
	} else {
		n = d.uvarint()
	}
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off)/uint64(minBytes)+1 {
		d.fail("count %d exceeds buffer at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

// ids decodes one id list into dst (reused between calls by MergeEncoded;
// Decode passes nil to get fresh slices). The returned list is sorted
// ascending in v2 by construction; v1 lists are returned verbatim.
func (d *decoder) ids(dst []uint64) []uint64 {
	if d.version == versionV1 {
		n := d.count(8)
		if d.err != nil || n == 0 {
			return nil
		}
		if cap(dst) < n {
			dst = make([]uint64, n)
		}
		dst = dst[:n]
		for i := range dst {
			dst[i] = d.u64()
		}
		return dst
	}
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	prev := uint64(0)
	for i := range dst {
		v := d.uvarint()
		if i > 0 {
			if v == 0 {
				d.fail("id list not strictly ascending at offset %d", d.off)
				return nil
			}
			next := prev + v
			if next < prev {
				d.fail("id delta overflow at offset %d", d.off)
				return nil
			}
			v = next
		}
		dst[i] = v
		prev = v
	}
	if d.err != nil {
		return nil
	}
	return dst
}

// header validates the magic, version, and mode bytes.
func (d *decoder) header() (interval.Mode, error) {
	m := d.bytes(3)
	if m == nil || string(m) != string(magicPrefix[:]) {
		return 0, fmt.Errorf("summary: bad magic")
	}
	d.version = d.u8()
	if d.version != versionV1 && d.version != versionV2 && d.version != versionV3 {
		return 0, fmt.Errorf("summary: unsupported wire version %q", d.version)
	}
	mode := interval.Mode(d.u8())
	if mode != interval.Lossy && mode != interval.Exact {
		return 0, fmt.Errorf("summary: bad mode %d", mode)
	}
	return mode, nil
}

// registryEntry decodes one registry entry: the id key (delta-decoded in
// v2 against prev) and its c3 mask, read into maskScratch.
func (d *decoder) registryEntry(i int, prev uint64, maskScratch subid.Mask) (uint64, subid.Mask) {
	var key uint64
	if d.version == versionV1 {
		key = d.u64()
	} else {
		v := d.uvarint()
		if i > 0 {
			if v == 0 {
				d.fail("registry keys not strictly ascending at offset %d", d.off)
				return 0, nil
			}
			key = prev + v
			if key < prev {
				d.fail("registry key delta overflow at offset %d", d.off)
				return 0, nil
			}
		} else {
			key = v
		}
	}
	words := int(d.u8())
	if cap(maskScratch) < words {
		maskScratch = make(subid.Mask, words)
	}
	maskScratch = maskScratch[:words]
	for w := 0; w < words; w++ {
		if d.version == versionV1 {
			maskScratch[w] = d.u64()
		} else {
			maskScratch[w] = d.uvarint()
		}
	}
	return key, maskScratch
}

// Decode parses a summary encoded by Encode or EncodeV1 (the version byte
// selects the codec). The schema must match the encoder's (attribute ids
// are schema indexes).
func Decode(s *schema.Schema, buf []byte) (*Summary, error) {
	d := &decoder{buf: buf}
	mode, err := d.header()
	if err != nil {
		return nil, err
	}
	sm := New(s, mode)

	nIDs := d.count(2)
	prev := uint64(0)
	for i := 0; i < nIDs && d.err == nil; i++ {
		key, mask := d.registryEntry(i, prev, nil)
		if d.err != nil {
			break
		}
		prev = key
		if !sm.registerID(key, mask.Clone()) {
			d.fail("duplicate registry id %d", key)
			break
		}
	}

	nAACS := int(d.u16())
	for i := 0; i < nAACS && d.err == nil; i++ {
		a := schema.AttrID(d.u16())
		if int(a) >= s.Len() || !s.TypeOf(a).Arithmetic() {
			d.fail("AACS for non-arithmetic attribute %d", a)
			break
		}
		var rows []interval.RowView
		nRows := int(d.u32())
		for r := 0; r < nRows && d.err == nil; r++ {
			lo, hi := d.f64(), d.f64()
			flags := d.u8()
			iv := interval.Range(lo, hi, flags&1 != 0, flags&2 != 0)
			rows = append(rows, interval.RowView{Interval: iv, IDs: d.ids(nil)})
		}
		var eqs, nes []interval.EqView
		nEq := int(d.u32())
		for r := 0; r < nEq && d.err == nil; r++ {
			v := d.f64()
			eqs = append(eqs, interval.EqView{Value: v, IDs: d.ids(nil)})
		}
		nNe := int(d.u32())
		for r := 0; r < nNe && d.err == nil; r++ {
			v := d.f64()
			nes = append(nes, interval.EqView{Value: v, IDs: d.ids(nil)})
		}
		if d.err != nil {
			break
		}
		set, err := interval.NewSetFromRows(mode, rows, eqs, nes)
		if err != nil {
			d.fail("AACS for attribute %d: %v", a, err)
			break
		}
		if _, dup := sm.aacs[a]; dup {
			d.fail("duplicate AACS section for attribute %d", a)
			break
		}
		sm.aacs[a] = set
	}

	nSACS := int(d.u16())
	for i := 0; i < nSACS && d.err == nil; i++ {
		a := schema.AttrID(d.u16())
		if int(a) >= s.Len() || s.TypeOf(a) != schema.TypeString {
			d.fail("SACS for non-string attribute %d", a)
			break
		}
		var rows, nes []strmatch.Row
		nRows := int(d.u32())
		for r := 0; r < nRows && d.err == nil; r++ {
			op := schema.Op(d.u8())
			if !op.StringOp() {
				d.fail("bad SACS operator %d", op)
				break
			}
			text := string(d.bytes(int(d.u16())))
			rows = append(rows, strmatch.Row{Pattern: strmatch.Pattern{Op: op, Text: text}, IDs: d.ids(nil)})
		}
		nNe := int(d.u32())
		for r := 0; r < nNe && d.err == nil; r++ {
			text := string(d.bytes(int(d.u16())))
			nes = append(nes, strmatch.Row{Pattern: strmatch.Pattern{Op: schema.OpNE, Text: text}, IDs: d.ids(nil)})
		}
		if d.err != nil {
			break
		}
		set, err := strmatch.NewSetFromRows(rows, nes)
		if err != nil {
			d.fail("SACS for attribute %d: %v", a, err)
			break
		}
		if _, dup := sm.sacs[a]; dup {
			d.fail("duplicate SACS section for attribute %d", a)
			break
		}
		sm.sacs[a] = set
	}

	if d.version == versionV3 && d.err == nil {
		// AddRetraction also drops any rows a malformed payload carried for
		// a key it simultaneously retracts — retraction wins.
		for _, key := range d.ids(nil) {
			sm.AddRetraction(key)
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("summary: %d trailing bytes", len(buf)-d.off)
	}
	return sm, nil
}

// MergeEncoded folds a wire-form summary (either version) directly into
// sm, with the same semantics as Decode followed by Merge but without
// materializing the intermediate Summary — the hot path of Algorithm 2
// delivery. Scratch buffers are reused across rows, so a merge allocates
// only what the receiving summary retains.
//
// On error the summary may hold a partial merge: some rows and registry
// entries of the payload applied, the rest not. That is equivalent to the
// message having been lost mid-transfer — coverage is degraded (ids with
// incomplete attribute rows simply never reach their c3 count and the
// caller does not extend Merged_Brokers), but matching stays correct, the
// same guarantee the engine gives for dropped summary messages.
func (sm *Summary) MergeEncoded(buf []byte) error {
	// The payload may re-register keys this summary has tombstoned; purge
	// first so stale rows cannot over-count them (see Insert).
	sm.purgeDead()
	d := &decoder{buf: buf}
	mode, err := d.header()
	if err != nil {
		return err
	}
	_ = mode // the receiver's own mode governs merged semantics, as in Merge

	var idScratch []uint64
	var maskScratch subid.Mask
	// Registered masks are read-only after insertion, so new keys take
	// slices of a shared slab instead of one allocation per key.
	var maskSlab []uint64

	nIDs := d.count(2)
	prev := uint64(0)
	for i := 0; i < nIDs && d.err == nil; i++ {
		var key uint64
		key, maskScratch = d.registryEntry(i, prev, maskScratch)
		if d.err != nil {
			break
		}
		prev = key
		if _, ok := sm.ids[key]; !ok {
			w := len(maskScratch)
			if len(maskSlab) < w {
				maskSlab = make([]uint64, 256*w)
			}
			mask := subid.Mask(maskSlab[:w:w])
			maskSlab = maskSlab[w:]
			copy(mask, maskScratch)
			sm.registerID(key, mask)
		}
	}

	nAACS := int(d.u16())
	for i := 0; i < nAACS && d.err == nil; i++ {
		a := schema.AttrID(d.u16())
		if int(a) >= sm.schema.Len() || !sm.schema.TypeOf(a).Arithmetic() {
			d.fail("AACS for non-arithmetic attribute %d", a)
			break
		}
		set := sm.arithSet(a)
		nRows := int(d.u32())
		for r := 0; r < nRows && d.err == nil; r++ {
			lo, hi := d.f64(), d.f64()
			flags := d.u8()
			iv := interval.Range(lo, hi, flags&1 != 0, flags&2 != 0)
			idScratch = d.ids(idScratch[:0])
			if d.err == nil {
				set.MergeRow(iv, idScratch)
			}
		}
		nEq := int(d.u32())
		for r := 0; r < nEq && d.err == nil; r++ {
			v := d.f64()
			idScratch = d.ids(idScratch[:0])
			if d.err == nil {
				set.MergePoint(v, idScratch)
			}
		}
		nNe := int(d.u32())
		for r := 0; r < nNe && d.err == nil; r++ {
			v := d.f64()
			idScratch = d.ids(idScratch[:0])
			if d.err == nil {
				set.MergeNotEqual(v, idScratch)
			}
		}
	}

	nSACS := int(d.u16())
	for i := 0; i < nSACS && d.err == nil; i++ {
		a := schema.AttrID(d.u16())
		if int(a) >= sm.schema.Len() || sm.schema.TypeOf(a) != schema.TypeString {
			d.fail("SACS for non-string attribute %d", a)
			break
		}
		set := sm.strSet(a)
		nRows := int(d.u32())
		for r := 0; r < nRows && d.err == nil; r++ {
			op := schema.Op(d.u8())
			if !op.StringOp() || op == schema.OpNE {
				d.fail("bad SACS operator %d", op)
				break
			}
			text := d.bytes(int(d.u16()))
			idScratch = d.ids(idScratch[:0])
			if d.err == nil {
				set.MergeRowBytes(op, text, idScratch)
			}
		}
		nNe := int(d.u32())
		for r := 0; r < nNe && d.err == nil; r++ {
			text := d.bytes(int(d.u16()))
			idScratch = d.ids(idScratch[:0])
			if d.err == nil {
				set.MergeRowBytes(schema.OpNE, text, idScratch)
			}
		}
	}

	if d.version == versionV3 && d.err == nil {
		// Apply the payload's retractions last, so they override any rows
		// this payload (or an earlier one) merged for the same keys, and
		// retain them for onward propagation. Long-lived merged summaries
		// that never re-propagate call ClearRetractions afterwards.
		idScratch = d.ids(idScratch[:0])
		if d.err == nil {
			for _, key := range idScratch {
				sm.AddRetraction(key)
			}
		}
	}

	if d.err != nil {
		return d.err
	}
	if d.off != len(buf) {
		return fmt.Errorf("summary: %d trailing bytes", len(buf)-d.off)
	}
	return nil
}
