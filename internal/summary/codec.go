package summary

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/strmatch"
	"github.com/subsum/subsum/internal/subid"
)

// Binary wire codec for summaries. This is what brokers actually exchange
// in the TCP daemon and what netsim counts when measuring real (not
// modelled) bytes. Layout (little endian):
//
//	magic "SSM1", mode u8
//	id registry:  count u32, then per id: key u64, words u8, word u64 ×words
//	AACS section: count u16, per attribute:
//	    attr u16
//	    ranges u32 × {lo f64, hi f64, flags u8, ids}
//	    eqs    u32 × {val f64, ids}
//	    nes    u32 × {val f64, ids}
//	SACS section: count u16, per attribute:
//	    attr u16
//	    rows u32 × {op u8, textLen u16, text, ids}
//	    nes  u32 × {textLen u16, text, ids}
//
// where ids = count u32 followed by that many u64 keys.
var magic = [4]byte{'S', 'S', 'M', '1'}

// Encode appends the summary's wire form to buf.
func (sm *Summary) Encode(buf []byte) []byte {
	buf = append(buf, magic[:]...)
	buf = append(buf, byte(sm.mode))

	// Registry, sorted by key for determinism.
	keys := append([]uint64(nil), sm.keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, key := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, key)
		mask := sm.maskOf(key)
		buf = append(buf, byte(len(mask)))
		for _, w := range mask {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}

	// AACS section.
	aattrs := sortedAttrs(sm.aacs)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(aattrs)))
	for _, a := range aattrs {
		s := sm.aacs[a]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(a))
		rows := s.Rows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
		for _, r := range rows {
			buf = appendFloat(buf, r.Interval.Lo)
			buf = appendFloat(buf, r.Interval.Hi)
			var flags byte
			if r.Interval.LoOpen {
				flags |= 1
			}
			if r.Interval.HiOpen {
				flags |= 2
			}
			buf = append(buf, flags)
			buf = appendIDs(buf, r.IDs)
		}
		buf = appendEqRows(buf, s.EqRows())
		buf = appendEqRows(buf, s.NeRows())
	}

	// SACS section.
	sattrs := sortedAttrs(sm.sacs)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sattrs)))
	for _, a := range sattrs {
		s := sm.sacs[a]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(a))
		rows := s.Rows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
		for _, r := range rows {
			buf = append(buf, byte(r.Pattern.Op))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Pattern.Text)))
			buf = append(buf, r.Pattern.Text...)
			buf = appendIDs(buf, r.IDs)
		}
		nes := s.NeRows()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nes)))
		for _, r := range nes {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Pattern.Text)))
			buf = append(buf, r.Pattern.Text...)
			buf = appendIDs(buf, r.IDs)
		}
	}
	return buf
}

// EncodedSize returns the size in bytes of the summary's wire form.
func (sm *Summary) EncodedSize() int { return len(sm.Encode(nil)) }

func sortedAttrs[T any](m map[schema.AttrID]T) []schema.AttrID {
	out := make([]schema.AttrID, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendIDs(buf []byte, ids []uint64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	return buf
}

func appendEqRows(buf []byte, rows []interval.EqView) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		buf = appendFloat(buf, r.Value)
		buf = appendIDs(buf, r.IDs)
	}
	return buf
}

// decoder is a bounds-checked cursor over an encoded summary.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("summary: "+format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) ids() []uint64 {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+8*n > len(d.buf) {
		d.fail("id list of %d entries exceeds buffer", n)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64()
	}
	return out
}

// Decode parses a summary encoded by Encode. The schema must match the
// encoder's (attribute ids are schema indexes).
func Decode(s *schema.Schema, buf []byte) (*Summary, error) {
	d := &decoder{buf: buf}
	if m := d.bytes(4); m == nil || string(m) != string(magic[:]) {
		return nil, fmt.Errorf("summary: bad magic")
	}
	mode := interval.Mode(d.u8())
	if mode != interval.Lossy && mode != interval.Exact {
		return nil, fmt.Errorf("summary: bad mode %d", mode)
	}
	sm := New(s, mode)

	nIDs := int(d.u32())
	for i := 0; i < nIDs && d.err == nil; i++ {
		key := d.u64()
		words := int(d.u8())
		mask := make(subid.Mask, words)
		for w := 0; w < words; w++ {
			mask[w] = d.u64()
		}
		if !sm.registerID(key, mask) {
			d.fail("duplicate registry id %d", key)
			break
		}
	}

	nAACS := int(d.u16())
	for i := 0; i < nAACS && d.err == nil; i++ {
		a := schema.AttrID(d.u16())
		if int(a) >= s.Len() || !s.TypeOf(a).Arithmetic() {
			d.fail("AACS for non-arithmetic attribute %d", a)
			break
		}
		var rows []interval.RowView
		nRows := int(d.u32())
		for r := 0; r < nRows && d.err == nil; r++ {
			lo, hi := d.f64(), d.f64()
			flags := d.u8()
			iv := interval.Range(lo, hi, flags&1 != 0, flags&2 != 0)
			rows = append(rows, interval.RowView{Interval: iv, IDs: d.ids()})
		}
		var eqs, nes []interval.EqView
		nEq := int(d.u32())
		for r := 0; r < nEq && d.err == nil; r++ {
			v := d.f64()
			eqs = append(eqs, interval.EqView{Value: v, IDs: d.ids()})
		}
		nNe := int(d.u32())
		for r := 0; r < nNe && d.err == nil; r++ {
			v := d.f64()
			nes = append(nes, interval.EqView{Value: v, IDs: d.ids()})
		}
		if d.err != nil {
			break
		}
		set, err := interval.NewSetFromRows(mode, rows, eqs, nes)
		if err != nil {
			d.fail("AACS for attribute %d: %v", a, err)
			break
		}
		if _, dup := sm.aacs[a]; dup {
			d.fail("duplicate AACS section for attribute %d", a)
			break
		}
		sm.aacs[a] = set
	}

	nSACS := int(d.u16())
	for i := 0; i < nSACS && d.err == nil; i++ {
		a := schema.AttrID(d.u16())
		if int(a) >= s.Len() || s.TypeOf(a) != schema.TypeString {
			d.fail("SACS for non-string attribute %d", a)
			break
		}
		var rows, nes []strmatch.Row
		nRows := int(d.u32())
		for r := 0; r < nRows && d.err == nil; r++ {
			op := schema.Op(d.u8())
			if !op.StringOp() {
				d.fail("bad SACS operator %d", op)
				break
			}
			text := string(d.bytes(int(d.u16())))
			rows = append(rows, strmatch.Row{Pattern: strmatch.Pattern{Op: op, Text: text}, IDs: d.ids()})
		}
		nNe := int(d.u32())
		for r := 0; r < nNe && d.err == nil; r++ {
			text := string(d.bytes(int(d.u16())))
			nes = append(nes, strmatch.Row{Pattern: strmatch.Pattern{Op: schema.OpNE, Text: text}, IDs: d.ids()})
		}
		if d.err != nil {
			break
		}
		set, err := strmatch.NewSetFromRows(rows, nes)
		if err != nil {
			d.fail("SACS for attribute %d: %v", a, err)
			break
		}
		if _, dup := sm.sacs[a]; dup {
			d.fail("duplicate SACS section for attribute %d", a)
			break
		}
		sm.sacs[a] = set
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("summary: %d trailing bytes", len(buf)-d.off)
	}
	return sm, nil
}
