// Signature extraction for summary-similarity subgrouping. A Signature
// is a compact, order-insensitive sketch of what a summary can match,
// computed straight from the AACS/SACS rows and the dense id registry —
// no wire decode, no raw subscriptions. The subgroup package compares
// signatures to cluster brokers and compiles them into cross-subgroup
// digests, so everything a digest needs to stay sound (no false
// negatives) is captured here conservatively: arithmetic range rows
// become covering interval hulls, equality rows keep their exact value
// bits, string rows reduce to fixed-width prefix keys with anything
// wider than a prefix collapsing to a wildcard flag.
package summary

import (
	"math"
	"sort"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// SigPrefixLen is the fixed string-key width: a SACS row whose matches
// all share their first SigPrefixLen bytes (equality texts and prefix
// patterns at least that long) contributes the hash of those bytes;
// every other row shape sets Wild. Event values shorter than
// SigPrefixLen hash whole.
const SigPrefixLen = 6

// SigKey is one hashed string-prefix key with the number of id-list
// entries behind it (the weight similarity uses).
type SigKey struct {
	Hash   uint64
	Weight int32
}

// ArithSig sketches one attribute's AACS.
type ArithSig struct {
	// Hulls are disjoint intervals covering every range row, capped in
	// count by merging the closest pair (a pure widening, so coverage
	// is preserved).
	Hulls []interval.Interval
	// EqBits are the exact math.Float64bits of the equality-row values,
	// sorted and deduplicated.
	EqBits []uint64
	// HasNE marks a not-equal row: it matches all but one value, so the
	// attribute must count as satisfiable for any event value.
	HasNE  bool
	Weight int
}

// StrSig sketches one attribute's SACS.
type StrSig struct {
	// Keys are hashed SigPrefixLen-byte prefixes, sorted by hash, with
	// duplicate hashes' weights merged.
	Keys []SigKey
	// Wild marks a row no prefix key can bound (suffix/contains/glob/
	// not-equal patterns, or texts shorter than SigPrefixLen): the
	// attribute must count as satisfiable for any event value.
	Wild   bool
	Weight int
}

// Signature is the similarity/digest sketch of one summary.
type Signature struct {
	Subs  int
	Arith map[schema.AttrID]*ArithSig
	Str   map[schema.AttrID]*StrSig
	// Masks are the distinct c3 attribute masks in the registry: the
	// digest's satisfiability test needs to know which attribute
	// combinations a covered subscription can require.
	Masks []subid.Mask
}

// SigHash is the FNV-1a 64-bit hash signatures and digests share, so a
// digest built from one broker's signature tests event keys hashed the
// same way everywhere.
func SigHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// SigHashString is SigHash over a string without conversion.
func SigHashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// StrKeyOf returns the signature key for an event's string value: the
// hash of its first SigPrefixLen bytes (the whole value when shorter).
func StrKeyOf(v string) uint64 {
	if len(v) > SigPrefixLen {
		v = v[:SigPrefixLen]
	}
	return SigHashString(v)
}

// Signature extracts the summary's sketch. maxHulls caps the interval
// hulls per arithmetic attribute (≤ 0 means 8). The result is detached
// from the summary (safe to hold across mutations).
func (sm *Summary) Signature(maxHulls int) *Signature {
	if maxHulls <= 0 {
		maxHulls = 8
	}
	sm.purgeDead()
	sig := &Signature{
		Subs:  len(sm.keys),
		Arith: make(map[schema.AttrID]*ArithSig, len(sm.aacs)),
		Str:   make(map[schema.AttrID]*StrSig, len(sm.sacs)),
	}
	for a, set := range sm.aacs {
		as := &ArithSig{}
		ivs := make([]interval.Interval, 0, 8)
		for _, r := range set.Rows() {
			ivs = append(ivs, r.Interval)
			as.Weight += len(r.IDs)
		}
		as.Hulls = mergeHulls(ivs, maxHulls)
		for _, e := range set.EqRows() {
			as.EqBits = append(as.EqBits, math.Float64bits(e.Value))
			as.Weight += len(e.IDs)
		}
		sort.Slice(as.EqBits, func(i, j int) bool { return as.EqBits[i] < as.EqBits[j] })
		as.EqBits = dedupU64(as.EqBits)
		for _, e := range set.NeRows() {
			as.HasNE = true
			as.Weight += len(e.IDs)
		}
		if as.Weight > 0 {
			sig.Arith[a] = as
		}
	}
	for a, set := range sm.sacs {
		ss := &StrSig{}
		for _, r := range set.Rows() {
			ss.Weight += len(r.IDs)
			text := r.Pattern.Text
			bounded := len(text) >= SigPrefixLen &&
				(r.Pattern.Op == schema.OpEQ || r.Pattern.Op == schema.OpPrefix)
			if bounded {
				ss.Keys = append(ss.Keys, SigKey{Hash: SigHashString(text[:SigPrefixLen]), Weight: int32(len(r.IDs))})
			} else {
				ss.Wild = true
			}
		}
		for _, r := range set.NeRows() {
			ss.Wild = true
			ss.Weight += len(r.IDs)
		}
		sort.Slice(ss.Keys, func(i, j int) bool { return ss.Keys[i].Hash < ss.Keys[j].Hash })
		ss.Keys = mergeSigKeys(ss.Keys)
		if ss.Weight > 0 {
			sig.Str[a] = ss
		}
	}
	seen := make(map[string]bool, 16)
	for _, m := range sm.masks {
		k := maskKey(m)
		if !seen[k] {
			seen[k] = true
			sig.Masks = append(sig.Masks, m.Clone())
		}
	}
	return sig
}

func maskKey(m subid.Mask) string {
	b := make([]byte, 0, 8*len(m))
	for _, w := range m {
		b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(b)
}

func dedupU64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func mergeSigKeys(keys []SigKey) []SigKey {
	out := keys[:0]
	for _, k := range keys {
		if n := len(out); n > 0 && out[n-1].Hash == k.Hash {
			out[n-1].Weight += k.Weight
		} else {
			out = append(out, k)
		}
	}
	return out
}

// mergeHulls coalesces sorted-by-Lo intervals into disjoint hulls, then
// widens the closest-gap pair until at most max remain. Interval rows
// from an AACS arrive disjoint and sorted; the sort here makes the
// helper safe for arbitrary input too.
func mergeHulls(ivs []interval.Interval, max int) []interval.Interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi, last.HiOpen = iv.Hi, iv.HiOpen
			} else if iv.Hi == last.Hi && !iv.HiOpen {
				last.HiOpen = false
			}
		} else {
			out = append(out, iv)
		}
	}
	for len(out) > max {
		// Merge the adjacent pair with the smallest gap; ties go to the
		// leftmost pair so the cap is deterministic.
		best, bestGap := 0, math.Inf(1)
		for i := 0; i+1 < len(out); i++ {
			if gap := out[i+1].Lo - out[i].Hi; gap < bestGap {
				best, bestGap = i, gap
			}
		}
		out[best].Hi, out[best].HiOpen = out[best+1].Hi, out[best+1].HiOpen
		out = append(out[:best+1], out[best+2:]...)
	}
	return out
}
