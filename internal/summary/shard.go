package summary

import (
	"runtime"
	"slices"
	"sync"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// ShardByKey partitions the summary into n disjoint sub-summaries by
// contiguous ascending id-key range, so one event can be matched across
// cores without shared scratch. Every registered id lands in exactly one
// shard; shard s covers a key range strictly below shard s+1's, which is
// what makes concatenating per-shard match results in shard order
// globally sorted — byte-identical to the unsharded matcher's output at
// any shard count (the determinism rule).
//
// The returned summaries are deep copies: the receiver can keep mutating
// while matchers run against the shards. n is clamped to [1, number of
// ids] so no shard is empty (an empty summary still gets one shard).
func (sm *Summary) ShardByKey(n int) []*Summary {
	sm.purgeDead()
	if n < 1 {
		n = 1
	}
	if n > len(sm.keys) {
		n = max(1, len(sm.keys))
	}
	if n == 1 {
		return []*Summary{sm.Clone()}
	}
	sorted := append([]uint64(nil), sm.keys...)
	slices.Sort(sorted)
	out := make([]*Summary, n)
	for s := 0; s < n; s++ {
		lo := s * len(sorted) / n
		hi := (s + 1) * len(sorted) / n
		keep := make(map[uint64]struct{}, hi-lo)
		for _, k := range sorted[lo:hi] {
			keep[k] = struct{}{}
		}
		out[s] = sm.cloneFiltered(keep)
	}
	return out
}

// cloneFiltered deep-copies the summary restricted to the keys in keep.
// Rows of excluded ids are swept with the same batched RemoveAll used by
// the tombstone purge, so a shard never over-counts a kept id.
func (sm *Summary) cloneFiltered(keep map[uint64]struct{}) *Summary {
	dead := make(map[uint64]struct{}, len(sm.keys)-len(keep))
	for _, k := range sm.keys {
		if _, ok := keep[k]; !ok {
			dead[k] = struct{}{}
		}
	}
	c := New(sm.schema, sm.mode)
	for a, s := range sm.aacs {
		cs := s.Clone()
		cs.RemoveAll(dead)
		c.aacs[a] = cs
	}
	for a, s := range sm.sacs {
		cs := s.Clone()
		cs.RemoveAll(dead)
		c.sacs[a] = cs
	}
	for i, k := range sm.keys {
		if _, ok := keep[k]; ok {
			c.registerID(k, sm.masks[i].Clone())
		}
	}
	return c
}

// ShardedMatcher runs Algorithm 1 against a key-range partition of one
// summary (ShardByKey). Each shard has its own Matcher, so a batch of
// events can fan its shards out across cores with no shared scratch; a
// single event is matched serially shard by shard. Like Matcher, a
// ShardedMatcher must not be used concurrently with itself; use a
// ShardedMatcherPool to share one partition among goroutines.
type ShardedMatcher struct {
	shards   []*Summary
	matchers []*Matcher

	out []uint64 // single-event concatenation scratch

	// Batch scratch: per-shard flat key buffers with per-event offsets,
	// combined into the flat all/res views handed to the caller.
	perShard []shardBatch
	all      []uint64
	res      [][]uint64

	obs *MatcherObs // aggregated cost instrumentation; nil = one branch
}

// shardBatch is one shard's batch scratch: keys holds the shard's matches
// for every event back to back, offs[i] the start of event i's segment
// (len(events)+1 entries).
type shardBatch struct {
	keys []uint64
	offs []int32
	cost MatchCost
}

// NewShardedMatcher returns a matcher over the given key-range partition.
// The shards must be disjoint and ascending by key range (what ShardByKey
// produces); the matcher does not re-verify this.
func NewShardedMatcher(shards []*Summary) *ShardedMatcher {
	m := &ShardedMatcher{
		shards:   shards,
		matchers: make([]*Matcher, len(shards)),
		perShard: make([]shardBatch, len(shards)),
	}
	for i, s := range shards {
		m.matchers[i] = s.NewMatcher()
	}
	return m
}

// NumShards returns the partition width.
func (m *ShardedMatcher) NumShards() int { return len(m.shards) }

// SetObs attaches cost instrumentation (nil detaches). Counts are
// recorded once per event at the sharded level — the per-shard matchers
// stay uninstrumented so an event is never counted once per shard.
func (m *ShardedMatcher) SetObs(obs *MatcherObs) { m.obs = obs }

// record aggregates one entry point's cost into the attached obs.
func (m *ShardedMatcher) record(events int, cost MatchCost) {
	if m.obs == nil {
		return
	}
	if m.obs.Events != nil {
		m.obs.Events.Add(int64(events))
	}
	if m.obs.Collected != nil {
		m.obs.Collected.Add(int64(cost.CollectedIDs))
	}
	if m.obs.Matched != nil {
		m.obs.Matched.Add(int64(cost.Matched))
	}
}

// MatchKeys returns the matched id keys in ascending order — identical to
// an unsharded Matcher over the union of the shards. The slice is scratch
// owned by the matcher, valid until the next call.
func (m *ShardedMatcher) MatchKeys(e *schema.Event) []uint64 {
	keys, _ := m.MatchKeysWithCost(e)
	return keys
}

// MatchKeysWithCost is MatchKeys with the Section 5.2.4 operation counts
// aggregated across shards (EventAttrs is counted once, not per shard).
func (m *ShardedMatcher) MatchKeysWithCost(e *schema.Event) ([]uint64, MatchCost) {
	var cost MatchCost
	m.out = m.out[:0]
	for i, sm := range m.matchers {
		keys, c := sm.MatchKeysWithCost(e)
		m.out = append(m.out, keys...)
		if i == 0 {
			cost.EventAttrs = c.EventAttrs
		}
		cost.CollectedIDs += c.CollectedIDs
		cost.UniqueIDs += c.UniqueIDs
	}
	cost.Matched = len(m.out)
	m.record(1, cost)
	return m.out, cost
}

// Match is MatchKeys returning full subscription ids (freshly allocated,
// caller-owned), with each key's c3 mask recovered from its shard's
// registry.
func (m *ShardedMatcher) Match(e *schema.Event) []subid.ID {
	m.MatchKeys(e)
	out := make([]subid.ID, 0, len(m.out))
	// Re-walk per shard so each key resolves against the registry that
	// holds its mask.
	for i, sm := range m.matchers {
		for _, key := range sm.out {
			out = append(out, m.shards[i].idFromKey(key))
		}
	}
	return out
}

// batchParallelMin is the batch size below which shard fan-out is not
// worth the goroutine round trip.
const batchParallelMin = 4

// MatchBatch matches every event against every shard and returns res,
// where res[i] is event i's matched keys in ascending order (identical to
// unsharded matching). With more than one shard, a large enough batch,
// and spare cores, the shards run in parallel — each shard's matcher
// walks the whole batch with its own scratch, so no two goroutines share
// state. The returned slices are scratch owned by the matcher, valid
// until the next call.
func (m *ShardedMatcher) MatchBatch(events []*schema.Event) [][]uint64 {
	res, _ := m.MatchBatchWithCost(events)
	return res
}

// MatchBatchWithCost is MatchBatch with the operation counts summed over
// the whole batch.
func (m *ShardedMatcher) MatchBatchWithCost(events []*schema.Event) ([][]uint64, MatchCost) {
	nShards := len(m.matchers)
	parallel := nShards > 1 && len(events) >= batchParallelMin && runtime.GOMAXPROCS(0) > 1
	if parallel {
		var wg sync.WaitGroup
		wg.Add(nShards)
		for s := 0; s < nShards; s++ {
			go func(s int) {
				defer wg.Done()
				m.matchShardBatch(s, events)
			}(s)
		}
		wg.Wait()
	} else {
		for s := 0; s < nShards; s++ {
			m.matchShardBatch(s, events)
		}
	}
	// Concatenate per event in shard order: shard key ranges ascend, so
	// the result is globally sorted without a merge step.
	var cost MatchCost
	m.all = m.all[:0]
	if cap(m.res) < len(events) {
		m.res = make([][]uint64, len(events))
	}
	m.res = m.res[:len(events)]
	for i := range events {
		start := len(m.all)
		for s := range m.perShard {
			sb := &m.perShard[s]
			m.all = append(m.all, sb.keys[sb.offs[i]:sb.offs[i+1]]...)
		}
		m.res[i] = m.all[start:len(m.all):len(m.all)]
	}
	for s := range m.perShard {
		c := m.perShard[s].cost
		if s == 0 {
			cost.EventAttrs = c.EventAttrs
		}
		cost.CollectedIDs += c.CollectedIDs
		cost.UniqueIDs += c.UniqueIDs
	}
	cost.Matched = len(m.all)
	m.record(len(events), cost)
	return m.res, cost
}

// matchShardBatch runs one shard's matcher over the whole batch into that
// shard's scratch. Safe to run concurrently across shards: it touches
// only m.perShard[s] and m.matchers[s].
func (m *ShardedMatcher) matchShardBatch(s int, events []*schema.Event) {
	sb := &m.perShard[s]
	sb.keys = sb.keys[:0]
	sb.offs = sb.offs[:0]
	sb.cost = MatchCost{}
	mt := m.matchers[s]
	for _, e := range events {
		sb.offs = append(sb.offs, int32(len(sb.keys)))
		keys, c := mt.MatchKeysWithCost(e)
		sb.keys = append(sb.keys, keys...)
		sb.cost.EventAttrs += c.EventAttrs
		sb.cost.CollectedIDs += c.CollectedIDs
		sb.cost.UniqueIDs += c.UniqueIDs
	}
	sb.offs = append(sb.offs, int32(len(sb.keys)))
}

// ShardedMatcherPool pools ShardedMatchers bound to one fixed partition,
// so concurrent readers of a published snapshot each lease private
// scratch without locking.
type ShardedMatcherPool struct {
	pool sync.Pool
	obs  *MatcherObs
}

// NewShardedMatcherPool returns a pool over the given partition.
func NewShardedMatcherPool(shards []*Summary) *ShardedMatcherPool {
	p := &ShardedMatcherPool{}
	p.pool.New = func() any {
		m := NewShardedMatcher(shards)
		m.SetObs(p.obs)
		return m
	}
	return p
}

// SetObs attaches cost instrumentation to matchers the pool creates.
// Call before the first Get; already-created matchers keep their setting.
func (p *ShardedMatcherPool) SetObs(obs *MatcherObs) { p.obs = obs }

// Get leases a matcher bound to the pool's partition.
func (p *ShardedMatcherPool) Get() *ShardedMatcher { return p.pool.Get().(*ShardedMatcher) }

// Put returns m to the pool.
func (p *ShardedMatcherPool) Put(m *ShardedMatcher) { p.pool.Put(m) }
