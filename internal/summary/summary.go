// Package summary implements per-broker subscription summaries (Section 3)
// and multi-broker merged summaries (Section 4.1) of the
// subscription-summarization paper.
//
// A Summary is subscription-summary-centric: an incoming subscription is
// dissolved into its attribute constraints, which are merged into the
// per-attribute AACS (arithmetic) and SACS (string) structures; only the
// subscription id (c1‖c2‖c3) survives, in the per-row id lists and in the
// id registry. The paper's Algorithm 1 (Match) recovers the matching ids
// for an incoming event from the structures alone.
//
// Summaries are lossy pre-filters: SACS generalization and AACS equality
// folding can over-approximate. The owning broker re-matches raw
// subscriptions before consumer delivery, so end-to-end matching has no
// false positives and the summary guarantees no false negatives.
package summary

import (
	"fmt"
	"sort"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/strmatch"
	"github.com/subsum/subsum/internal/subid"
)

// Summary holds the summarized subscriptions of one broker — or, after
// merging, of a set of brokers (a multi-broker summary).
type Summary struct {
	schema *schema.Schema
	mode   interval.Mode
	aacs   map[schema.AttrID]*interval.Set
	sacs   map[schema.AttrID]*strmatch.Set

	// Subscription-id registry. ids maps an id key (c1‖c2) to a dense
	// index into the parallel keys/masks/targets slices; Matcher keys its
	// epoch-stamped counters by that dense index, so Algorithm 1's step 2
	// runs over plain slices instead of a per-event hash map.
	ids     map[uint64]int32
	keys    []uint64
	masks   []subid.Mask
	targets []int32 // masks[i].Count(), cached (the c3 match target)

	// retract is the pending-retraction set: id keys whose subscriptions
	// were withdrawn and whose removal must still reach downstream peers.
	// The structure maintains the invariant that no retracted key is
	// visible in the summary (AddRetraction and every merge enforce it),
	// so a summary carrying retractions is always self-consistent. Nil
	// until the first retraction (the common, churn-free case).
	retract map[uint64]struct{}

	// dead is the tombstone set: keys removed from the registry whose rows
	// may still linger in the per-attribute structures. RemoveKey
	// tombstones instead of sweeping so an unsubscribe is O(1) — the old
	// per-removal sweep made n removals O(n²). Matching filters dead ids
	// through the registry for free; every row-reading operation (Compact,
	// Merge, Clone, encode, Stats, Validate) purges first, and Insert
	// purges when a tombstoned key is re-registered so stale rows can
	// never over-count a reused id past its c3 target.
	dead map[uint64]struct{}
}

// New returns an empty summary over the given schema. mode selects the
// AACS equality handling (interval.Lossy is the paper's behaviour).
func New(s *schema.Schema, mode interval.Mode) *Summary {
	return &Summary{
		schema: s,
		mode:   mode,
		aacs:   make(map[schema.AttrID]*interval.Set),
		sacs:   make(map[schema.AttrID]*strmatch.Set),
		ids:    make(map[uint64]int32),
	}
}

// registerID adds key→mask to the registry, taking ownership of mask.
// It reports false if the key is already registered.
func (sm *Summary) registerID(key uint64, mask subid.Mask) bool {
	if _, dup := sm.ids[key]; dup {
		return false
	}
	sm.ids[key] = int32(len(sm.keys))
	sm.keys = append(sm.keys, key)
	sm.masks = append(sm.masks, mask)
	sm.targets = append(sm.targets, int32(mask.Count()))
	return true
}

// maskOf returns the registered c3 mask for key, nil if unregistered.
func (sm *Summary) maskOf(key uint64) subid.Mask {
	if i, ok := sm.ids[key]; ok {
		return sm.masks[i]
	}
	return nil
}

// Schema returns the schema the summary was built over.
func (sm *Summary) Schema() *schema.Schema { return sm.schema }

// Mode returns the AACS equality-handling mode.
func (sm *Summary) Mode() interval.Mode { return sm.mode }

// NumSubscriptions returns the number of distinct subscription ids
// summarized.
func (sm *Summary) NumSubscriptions() int { return len(sm.keys) }

// Contains reports whether the summary covers the given subscription id.
func (sm *Summary) Contains(id subid.ID) bool {
	_, ok := sm.ids[id.Key()]
	return ok
}

// Insert dissolves the subscription into its attribute constraints and
// merges them into the per-attribute summary structures. The id's c3 mask
// is derived from the subscription if id.Attrs is nil.
func (sm *Summary) Insert(id subid.ID, sub *schema.Subscription) error {
	attrs := sub.AttrSet()
	if id.Attrs == nil {
		id.Attrs = subid.NewMask(sm.schema.Len())
		for _, a := range attrs {
			id.Attrs.Set(int(a))
		}
	}
	key := id.Key()
	if _, dup := sm.ids[key]; dup {
		return fmt.Errorf("summary: duplicate subscription id %v", id)
	}
	if _, tomb := sm.dead[key]; tomb {
		// The key is being reused before its old rows were purged: sweep
		// now, or the stale rows would count extra attributes against the
		// new subscription and could push it past its c3 target (a false
		// negative, which the design forbids).
		sm.purgeDead()
	}
	// Group constraints per attribute.
	for _, a := range attrs {
		t := sm.schema.TypeOf(a)
		switch {
		case t == schema.TypeInvalid:
			return fmt.Errorf("summary: constraint on unknown attribute %d", a)
		case t.Arithmetic():
			if err := sm.insertArithmetic(key, a, sub); err != nil {
				return err
			}
		default:
			if err := sm.insertString(key, a, sub); err != nil {
				return err
			}
		}
	}
	sm.registerID(key, id.Attrs.Clone())
	return nil
}

// insertArithmetic canonicalizes all arithmetic constraints of sub on
// attribute a into a single interval (as Figure 4 does for
// "8.30 < price < 8.70") plus any ≠ entries, and inserts them.
func (sm *Summary) insertArithmetic(key uint64, a schema.AttrID, sub *schema.Subscription) error {
	iv := interval.Full()
	hasInterval := false
	hasNE := false
	for _, c := range sub.Constraints {
		if c.Attr != a {
			continue
		}
		if c.Op == schema.OpNE {
			sm.arithSet(a).InsertNotEqual(c.Value.Num, key)
			hasNE = true
			continue
		}
		part, ok := intervalOf(c.Op, c.Value.Num)
		if !ok {
			return fmt.Errorf("summary: operator %v not valid on arithmetic attribute", c.Op)
		}
		iv = interval.Intersect(iv, part)
		hasInterval = true
	}
	if hasInterval {
		sm.arithSet(a).Insert(iv, key)
	} else if !hasNE {
		return fmt.Errorf("summary: attribute %d listed but unconstrained", a)
	}
	return nil
}

// insertString inserts each string constraint of sub on attribute a as a
// SACS pattern.
func (sm *Summary) insertString(key uint64, a schema.AttrID, sub *schema.Subscription) error {
	inserted := false
	for _, c := range sub.Constraints {
		if c.Attr != a {
			continue
		}
		if !c.Op.StringOp() {
			return fmt.Errorf("summary: operator %v not valid on string attribute", c.Op)
		}
		sm.strSet(a).Insert(strmatch.FromConstraint(c), key)
		inserted = true
	}
	if !inserted {
		return fmt.Errorf("summary: attribute %d listed but unconstrained", a)
	}
	return nil
}

// intervalOf maps an arithmetic operator to its value interval.
func intervalOf(op schema.Op, v float64) (interval.Interval, bool) {
	switch op {
	case schema.OpEQ:
		return interval.Point(v), true
	case schema.OpLT:
		return interval.Below(v, false), true
	case schema.OpLE:
		return interval.Below(v, true), true
	case schema.OpGT:
		return interval.Above(v, false), true
	case schema.OpGE:
		return interval.Above(v, true), true
	default:
		return interval.Interval{}, false
	}
}

func (sm *Summary) arithSet(a schema.AttrID) *interval.Set {
	s, ok := sm.aacs[a]
	if !ok {
		s = interval.NewSet(sm.mode)
		sm.aacs[a] = s
	}
	return s
}

func (sm *Summary) strSet(a schema.AttrID) *strmatch.Set {
	s, ok := sm.sacs[a]
	if !ok {
		s = strmatch.NewSet()
		sm.sacs[a] = s
	}
	return s
}

// Remove deletes the subscription id from every structure (the summary
// maintenance path for unsubscription).
func (sm *Summary) Remove(id subid.ID) { sm.RemoveKey(id.Key()) }

// RemoveKey is Remove by raw id key (c1‖c2), for callers holding only the
// wire form of an id — the retraction-apply path. It is O(1): the key
// leaves the registry immediately (so it can no longer match) and its
// rows are tombstoned, swept out in batch by the next purge point.
func (sm *Summary) RemoveKey(key uint64) {
	i, ok := sm.ids[key]
	if !ok {
		return
	}
	// Swap-delete from the dense registry: the last key takes the vacated
	// index so the slices stay dense.
	last := int32(len(sm.keys) - 1)
	if i != last {
		sm.keys[i] = sm.keys[last]
		sm.masks[i] = sm.masks[last]
		sm.targets[i] = sm.targets[last]
		sm.ids[sm.keys[i]] = i
	}
	sm.keys = sm.keys[:last]
	sm.masks = sm.masks[:last]
	sm.targets = sm.targets[:last]
	delete(sm.ids, key)
	if sm.dead == nil {
		sm.dead = make(map[uint64]struct{})
	}
	sm.dead[key] = struct{}{}
}

// purgeDead sweeps tombstoned rows out of the per-attribute structures —
// one pass per structure regardless of how many removals accumulated.
func (sm *Summary) purgeDead() {
	if len(sm.dead) == 0 {
		return
	}
	for _, s := range sm.aacs {
		s.RemoveAll(sm.dead)
	}
	for _, s := range sm.sacs {
		s.RemoveAll(sm.dead)
	}
	clear(sm.dead)
}

// Compact merges fragmented adjacent AACS rows left behind by churn
// (insert/remove cycles); matching behaviour is unchanged. Returns the
// number of rows eliminated.
func (sm *Summary) Compact() int {
	sm.purgeDead()
	total := 0
	for _, s := range sm.aacs {
		total += s.Compact()
	}
	return total
}

// AddRetraction records that the subscription with the given id key was
// withdrawn: the key's rows (if any) are removed immediately and the key
// joins the pending-retraction set, which travels with the summary's wire
// form so downstream merged summaries shrink too.
func (sm *Summary) AddRetraction(key uint64) {
	sm.RemoveKey(key)
	if sm.retract == nil {
		sm.retract = make(map[uint64]struct{})
	}
	sm.retract[key] = struct{}{}
}

// Retractions returns the pending-retraction keys, sorted ascending.
func (sm *Summary) Retractions() []uint64 {
	if len(sm.retract) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(sm.retract))
	for k := range sm.retract {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumRetractions returns the number of pending retractions.
func (sm *Summary) NumRetractions() int { return len(sm.retract) }

// ClearRetractions empties the pending-retraction set without touching
// rows. Long-lived merged summaries call this after applying a payload's
// retractions: they consume retractions but never re-propagate them, so
// retaining the keys would grow memory with total churn instead of live
// subscriptions.
func (sm *Summary) ClearRetractions() { sm.retract = nil }

// Match implements Algorithm 1: for every attribute of the event, collect
// the satisfied subscription-id lists from the per-attribute structures;
// count, per id, the number of distinct attributes satisfied; report the
// ids whose count equals their c3 attribute count. Results are sorted by
// id key.
func (sm *Summary) Match(e *schema.Event) []subid.ID {
	keys := sm.MatchKeys(e)
	out := make([]subid.ID, len(keys))
	for i, key := range keys {
		out[i] = sm.idFromKey(key)
	}
	return out
}

// MatchKeys is Match returning raw id keys (ascending), avoiding ID
// reconstruction for hot paths.
func (sm *Summary) MatchKeys(e *schema.Event) []uint64 {
	keys, _ := sm.MatchKeysWithCost(e)
	return keys
}

// MatchCost instruments one Algorithm 1 run with the operation counts of
// the Section 5.2.4 analysis: step 1's id-list collection work (the T1
// term) and step 2's counter scan over the P collected subscriptions (T2).
type MatchCost struct {
	// EventAttrs is the number of event attributes examined (n_ae + n_se).
	EventAttrs int
	// CollectedIDs is the total distinct ids collected across attributes —
	// the ΣL work of T1.
	CollectedIDs int
	// UniqueIDs is P, the distinct subscriptions counted in step 2 (T2).
	UniqueIDs int
	// Matched is the number of ids whose counters reached their c3 count.
	Matched int
}

// MatchKeysWithCost is MatchKeys returning the operation counts alongside
// the matched keys.
func (sm *Summary) MatchKeysWithCost(e *schema.Event) ([]uint64, MatchCost) {
	var cost MatchCost
	counters := make(map[uint64]int)
	perAttr := make(map[uint64]struct{})
	for _, f := range e.Fields() {
		// Step 1: collect satisfied id lists for this attribute.
		cost.EventAttrs++
		clear(perAttr)
		if f.Value.Arithmetic() {
			if s, ok := sm.aacs[f.Attr]; ok {
				cost.CollectedIDs += s.QueryInto(f.Value.Num, perAttr)
			}
		} else if s, ok := sm.sacs[f.Attr]; ok {
			cost.CollectedIDs += s.MatchInto(f.Value.Str, perAttr)
		}
		for key := range perAttr {
			counters[key]++
		}
	}
	// Step 2: keep ids whose counter equals their c3 attribute count.
	cost.UniqueIDs = len(counters)
	var out []uint64
	for key, n := range counters {
		if i, ok := sm.ids[key]; ok && n == int(sm.targets[i]) {
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	cost.Matched = len(out)
	return out, cost
}

// idFromKey reconstructs a full subscription id from its key and the
// registry's c3 mask.
func (sm *Summary) idFromKey(key uint64) subid.ID {
	broker, local := subid.KeyParts(key)
	return subid.ID{Broker: broker, Local: local, Attrs: sm.maskOf(key)}
}

// IDs returns all summarized subscription ids, sorted by key.
func (sm *Summary) IDs() []subid.ID {
	keys := append([]uint64(nil), sm.keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]subid.ID, len(keys))
	for i, key := range keys {
		out[i] = sm.idFromKey(key)
	}
	return out
}

// Merge folds other into sm (multi-broker summary construction,
// Section 4.1). Both summaries must share the schema; duplicate ids merge
// idempotently.
func (sm *Summary) Merge(other *Summary) error {
	if !sm.schema.Equal(other.schema) {
		return fmt.Errorf("summary: merging across different schemas")
	}
	// Both sides must be row-clean: other's rows are about to be copied
	// (tombstoned rows must not resurrect), and other's keys may re-enter
	// sm's registry (stale sm rows must not over-count them).
	sm.purgeDead()
	other.purgeDead()
	for a, s := range other.aacs {
		sm.arithSet(a).Merge(s)
	}
	for a, s := range other.sacs {
		sm.strSet(a).Merge(s)
	}
	for i, key := range other.keys {
		if _, ok := sm.ids[key]; !ok {
			sm.registerID(key, other.masks[i].Clone())
		}
	}
	// Retractions win over merged rows: a key retracted by either side must
	// not survive the merge, and the union keeps propagating downstream.
	for k := range other.retract {
		sm.AddRetraction(k)
	}
	for k := range sm.retract {
		sm.RemoveKey(k)
	}
	return nil
}

// Clone returns a deep copy of the summary.
func (sm *Summary) Clone() *Summary {
	sm.purgeDead()
	out := New(sm.schema, sm.mode)
	for a, s := range sm.aacs {
		out.aacs[a] = s.Clone()
	}
	for a, s := range sm.sacs {
		out.sacs[a] = s.Clone()
	}
	for i, key := range sm.keys {
		out.registerID(key, sm.masks[i].Clone())
	}
	if len(sm.retract) > 0 {
		out.retract = make(map[uint64]struct{}, len(sm.retract))
		for k := range sm.retract {
			out.retract[k] = struct{}{}
		}
	}
	return out
}

// Stats aggregates the shape of all per-attribute structures.
type Stats struct {
	Arithmetic    interval.Stats
	Strings       strmatch.Stats
	NumAACS       int // attributes with an AACS
	NumSACS       int // attributes with a SACS
	Subscriptions int
}

// Stats computes aggregate structure statistics.
func (sm *Summary) Stats() Stats {
	sm.purgeDead()
	var st Stats
	st.NumAACS = len(sm.aacs)
	st.NumSACS = len(sm.sacs)
	st.Subscriptions = len(sm.keys)
	for _, s := range sm.aacs {
		a := s.Stats()
		st.Arithmetic.NumRanges += a.NumRanges
		st.Arithmetic.NumEq += a.NumEq
		st.Arithmetic.NumNE += a.NumNE
		st.Arithmetic.IDEntries += a.IDEntries
	}
	for _, s := range sm.sacs {
		b := s.Stats()
		st.Strings.NumRows += b.NumRows
		st.Strings.NumNE += b.NumNE
		st.Strings.IDEntries += b.IDEntries
		st.Strings.PatternBytes += b.PatternBytes
	}
	return st
}

// SizeBytes returns the summary's size under the paper's cost model:
// equation (1) summed over arithmetic attributes plus equation (2) summed
// over string attributes. sst and sid are the storage sizes of an
// arithmetic value and a subscription id (both 4 in Table 2).
func (sm *Summary) SizeBytes(sst, sid int) int {
	sm.purgeDead()
	n := 0
	for _, s := range sm.aacs {
		n += s.SizeBytes(sst, sid)
	}
	for _, s := range sm.sacs {
		n += s.SizeBytes(sid)
	}
	return n
}
