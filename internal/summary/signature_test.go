package summary

import (
	"math"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

func sigSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sigInsert(t *testing.T, sm *Summary, local int, cs ...schema.Constraint) {
	t.Helper()
	sub, err := schema.NewSubscription(sm.Schema(), cs...)
	if err != nil {
		t.Fatal(err)
	}
	id := subid.ID{Broker: 1, Local: subid.LocalID(local)}
	if err := sm.Insert(id, sub); err != nil {
		t.Fatal(err)
	}
}

func attrID(t *testing.T, s *schema.Schema, name string) schema.AttrID {
	t.Helper()
	id, ok := s.ID(name)
	if !ok {
		t.Fatalf("no attribute %q", name)
	}
	return id
}

// TestSignatureArith: range rows become covering hulls, equality rows
// keep exact value bits, and a not-equal row sets HasNE.
func TestSignatureArith(t *testing.T) {
	s := sigSchema(t)
	price := attrID(t, s, "price")
	sm := New(s, interval.Lossy)
	sigInsert(t, sm, 0,
		schema.Constraint{Attr: price, Op: schema.OpGE, Value: schema.FloatValue(10)},
		schema.Constraint{Attr: price, Op: schema.OpLE, Value: schema.FloatValue(20)})
	sigInsert(t, sm, 1,
		schema.Constraint{Attr: price, Op: schema.OpEQ, Value: schema.FloatValue(77)})

	sig := sm.Signature(0)
	as, ok := sig.Arith[price]
	if !ok {
		t.Fatal("price missing from signature")
	}
	if as.HasNE {
		t.Fatal("HasNE set without a not-equal row")
	}
	covered := false
	for _, h := range as.Hulls {
		if h.Lo <= 10 && h.Hi >= 20 {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("hulls %v do not cover [10,20]", as.Hulls)
	}
	// Depending on eq-row representation the 77 shows up either as an
	// EqBits entry or folded into a (degenerate) hull; either way the
	// value must be covered.
	eqCovered := false
	for _, b := range as.EqBits {
		if b == floatBits(77) {
			eqCovered = true
		}
	}
	for _, h := range as.Hulls {
		if h.Lo <= 77 && h.Hi >= 77 {
			eqCovered = true
		}
	}
	if !eqCovered {
		t.Fatalf("eq value 77 not covered (hulls %v, eq bits %v)", as.Hulls, as.EqBits)
	}
	if sig.Subs != 2 {
		t.Fatalf("Subs = %d, want 2", sig.Subs)
	}

	sigInsert(t, sm, 2,
		schema.Constraint{Attr: price, Op: schema.OpNE, Value: schema.FloatValue(5)})
	if !sm.Signature(0).Arith[price].HasNE {
		t.Fatal("HasNE not set after inserting a not-equal constraint")
	}
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// TestSignatureHullCap: more distinct ranges than maxHulls must collapse
// by widening, never by dropping coverage.
func TestSignatureHullCap(t *testing.T) {
	s := sigSchema(t)
	price := attrID(t, s, "price")
	sm := New(s, interval.Lossy)
	for i := 0; i < 10; i++ {
		lo := float64(i * 100)
		sigInsert(t, sm, i,
			schema.Constraint{Attr: price, Op: schema.OpGE, Value: schema.FloatValue(lo)},
			schema.Constraint{Attr: price, Op: schema.OpLE, Value: schema.FloatValue(lo + 10)})
	}
	sig := sm.Signature(3)
	as := sig.Arith[price]
	if len(as.Hulls) > 3 {
		t.Fatalf("cap 3 produced %d hulls", len(as.Hulls))
	}
	for i := 0; i < 10; i++ {
		lo, hi := float64(i*100), float64(i*100+10)
		ok := false
		for _, h := range as.Hulls {
			if h.Lo <= lo && h.Hi >= hi {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("capped hulls %v lost coverage of [%v,%v]", as.Hulls, lo, hi)
		}
	}
}

// TestSignatureStrKeys: equality and prefix rows at least SigPrefixLen
// long become bounded prefix keys; shorter or unbounded row shapes set
// Wild.
func TestSignatureStrKeys(t *testing.T) {
	s := sigSchema(t)
	sym := attrID(t, s, "symbol")

	sm := New(s, interval.Lossy)
	sigInsert(t, sm, 0,
		schema.Constraint{Attr: sym, Op: schema.OpEQ, Value: schema.StringValue("micronet")})
	sigInsert(t, sm, 1,
		schema.Constraint{Attr: sym, Op: schema.OpPrefix, Value: schema.StringValue("microsoft")})
	sig := sm.Signature(0)
	ss := sig.Str[sym]
	if ss == nil || ss.Wild {
		t.Fatalf("bounded rows produced Wild signature: %+v", ss)
	}
	// "micronet" and "microsoft" share no 6-byte prefix ("micron" vs
	// "micros"), so two distinct keys.
	if len(ss.Keys) != 2 {
		t.Fatalf("got %d keys, want 2: %+v", len(ss.Keys), ss.Keys)
	}
	wantA, wantB := SigHashString("micron"), SigHashString("micros")
	found := map[uint64]bool{}
	for _, k := range ss.Keys {
		found[k.Hash] = true
	}
	if !found[wantA] || !found[wantB] {
		t.Fatalf("keys %+v missing expected prefix hashes", ss.Keys)
	}

	// A short equality text cannot fill a prefix key: Wild.
	sm2 := New(s, interval.Lossy)
	sigInsert(t, sm2, 0,
		schema.Constraint{Attr: sym, Op: schema.OpEQ, Value: schema.StringValue("LSE")})
	if ss := sm2.Signature(0).Str[sym]; ss == nil || !ss.Wild {
		t.Fatalf("short text must set Wild: %+v", ss)
	}

	// Suffix patterns have no usable prefix: Wild.
	sm3 := New(s, interval.Lossy)
	sigInsert(t, sm3, 0,
		schema.Constraint{Attr: sym, Op: schema.OpSuffix, Value: schema.StringValue("software")})
	if ss := sm3.Signature(0).Str[sym]; ss == nil || !ss.Wild {
		t.Fatalf("suffix pattern must set Wild: %+v", ss)
	}
}

// TestStrKeyOf: event values hash their first SigPrefixLen bytes, whole
// when shorter — and agree with the constraint-side keys, which is what
// makes digest string tests sound.
func TestStrKeyOf(t *testing.T) {
	if StrKeyOf("micronet") != SigHashString("micron") {
		t.Fatal("long value must hash its 6-byte prefix")
	}
	if StrKeyOf("LSE") != SigHashString("LSE") {
		t.Fatal("short value must hash whole")
	}
	if StrKeyOf("micronet") != StrKeyOf("microns") {
		t.Fatal("values sharing a 6-byte prefix must share a key")
	}
}

// TestSignatureMasksDistinct: the signature carries each distinct c3
// attribute mask once.
func TestSignatureMasksDistinct(t *testing.T) {
	s := sigSchema(t)
	price := attrID(t, s, "price")
	sym := attrID(t, s, "symbol")
	sm := New(s, interval.Lossy)
	for i := 0; i < 5; i++ {
		sigInsert(t, sm, i,
			schema.Constraint{Attr: price, Op: schema.OpGE, Value: schema.FloatValue(float64(i))})
	}
	sigInsert(t, sm, 5,
		schema.Constraint{Attr: sym, Op: schema.OpEQ, Value: schema.StringValue("micronet")})
	sig := sm.Signature(0)
	if len(sig.Masks) != 2 {
		t.Fatalf("got %d distinct masks, want 2", len(sig.Masks))
	}
}

// TestSignatureDetached: mutating the summary after extraction must not
// change an already-extracted signature's mask contents.
func TestSignatureDetached(t *testing.T) {
	s := sigSchema(t)
	price := attrID(t, s, "price")
	sm := New(s, interval.Lossy)
	sigInsert(t, sm, 0,
		schema.Constraint{Attr: price, Op: schema.OpGE, Value: schema.FloatValue(1)})
	sig := sm.Signature(0)
	wantMasks := len(sig.Masks)
	for i := 1; i < 20; i++ {
		sigInsert(t, sm, i,
			schema.Constraint{Attr: price, Op: schema.OpLE, Value: schema.FloatValue(float64(i))})
	}
	if len(sig.Masks) != wantMasks {
		t.Fatal("signature masks changed after summary mutation")
	}
}
