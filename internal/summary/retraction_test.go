package summary

import (
	"bytes"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
)

// TestWireVersionChurnFree pins the compatibility contract: a summary with
// no pending retractions encodes as v2, byte for byte, and only a
// non-empty retraction set switches the payload to v3.
func TestWireVersionChurnFree(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(0, 1), mustSub(t, s, `price > 8 && volume > 100`)); err != nil {
		t.Fatal(err)
	}
	enc := sm.Encode(nil)
	if enc[3] != '2' {
		t.Fatalf("churn-free summary encoded as version %q, want '2'", enc[3])
	}
	sm.AddRetraction(id(0, 99).Key())
	enc3 := sm.Encode(nil)
	if enc3[3] != '3' {
		t.Fatalf("summary with retraction encoded as version %q, want '3'", enc3[3])
	}
	if got := sm.EncodedSize(); got != len(enc3) {
		t.Fatalf("EncodedSize = %d, encoded length = %d", got, len(enc3))
	}
	sm.ClearRetractions()
	if again := sm.Encode(nil); !bytes.Equal(again, enc) {
		t.Fatalf("clearing retractions did not restore the v2 encoding")
	}
}

// TestCodecV3RoundTrip encodes a summary carrying both live rows and a
// pending-retraction set and checks Decode reconstructs both, with a
// byte-identical re-encoding.
func TestCodecV3RoundTrip(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(2, 1), mustSub(t, s, `exchange = "N*SE" && price < 8.70 && price > 8.30`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(2, 2), mustSub(t, s, `symbol >* OT && volume > 130000`)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(id(2, 3), mustSub(t, s, `low < 8.05`)); err != nil {
		t.Fatal(err)
	}
	sm.AddRetraction(id(2, 2).Key()) // retract one live row
	sm.AddRetraction(id(2, 7).Key()) // and one never-inserted id

	enc := sm.Encode(nil)
	dec, err := Decode(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumSubscriptions() != 2 {
		t.Fatalf("decoded NumSubscriptions = %d, want 2", dec.NumSubscriptions())
	}
	if dec.Contains(id(2, 2)) {
		t.Fatalf("decoded summary still contains retracted id")
	}
	got, want := dec.Retractions(), sm.Retractions()
	if len(got) != len(want) {
		t.Fatalf("decoded retractions = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("decoded retractions = %v, want %v", got, want)
		}
	}
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	if again := dec.Encode(nil); !bytes.Equal(again, enc) {
		t.Fatalf("v3 round trip is not byte-stable")
	}
}

// TestMergeAppliesRetractions checks "retraction wins" for both merge
// paths: folding a summary that retracts an id removes that id's rows
// from the receiver even though the receiver inserted them earlier, and
// the retraction is retained for onward propagation.
func TestMergeAppliesRetractions(t *testing.T) {
	s := stockSchema(t)
	build := func() *Summary {
		sm := New(s, interval.Lossy)
		if err := sm.Insert(id(1, 5), mustSub(t, s, `price > 8 && volume > 100`)); err != nil {
			t.Fatal(err)
		}
		if err := sm.Insert(id(3, 1), mustSub(t, s, `low < 2`)); err != nil {
			t.Fatal(err)
		}
		return sm
	}
	delta := New(s, interval.Lossy)
	delta.AddRetraction(id(1, 5).Key())

	direct := build()
	if err := direct.Merge(delta); err != nil {
		t.Fatal(err)
	}
	encoded := build()
	if err := encoded.MergeEncoded(delta.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	for name, sm := range map[string]*Summary{"Merge": direct, "MergeEncoded": encoded} {
		if sm.Contains(id(1, 5)) {
			t.Fatalf("%s: retracted id survived the merge", name)
		}
		if !sm.Contains(id(3, 1)) {
			t.Fatalf("%s: unrelated id was lost", name)
		}
		if sm.NumRetractions() != 1 {
			t.Fatalf("%s: retraction not retained for onward propagation", name)
		}
		if got := sm.Match(mustEvent(t, s, `price=9 volume=200`)); len(got) != 0 {
			t.Fatalf("%s: retracted subscription still matches: %v", name, got)
		}
		if err := sm.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestRetractionWinsOverPayloadRows feeds a payload that both carries rows
// for an id and retracts it — the retraction must win on decode.
func TestRetractionWinsOverPayloadRows(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	if err := sm.Insert(id(4, 9), mustSub(t, s, `price > 1`)); err != nil {
		t.Fatal(err)
	}
	sm.retract = map[uint64]struct{}{id(4, 9).Key(): {}} // bypass AddRetraction's immediate removal
	enc := sm.Encode(nil)

	dec, err := Decode(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Contains(id(4, 9)) {
		t.Fatalf("Decode kept rows for an id the same payload retracts")
	}
	recv := New(s, interval.Lossy)
	if err := recv.MergeEncoded(enc); err != nil {
		t.Fatal(err)
	}
	if recv.Contains(id(4, 9)) {
		t.Fatalf("MergeEncoded kept rows for an id the same payload retracts")
	}
}

// TestTombstoneReuseNoFalseNegative reuses an id key after an O(1)
// RemoveKey, before any purge point has swept the tombstoned rows. The
// stale rows must not leak into the reused id's match accounting: a
// leftover row would push the per-event counter past the new c3 target
// and silently drop real matches.
func TestTombstoneReuseNoFalseNegative(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	k := id(0, 42)
	if err := sm.Insert(k, mustSub(t, s, `price > 8 && volume > 100`)); err != nil {
		t.Fatal(err)
	}
	sm.RemoveKey(k.Key())
	// Reuse the key for a single-attribute subscription while the old
	// price/volume rows are still tombstoned, not yet purged.
	if err := sm.Insert(k, mustSub(t, s, `price > 8`)); err != nil {
		t.Fatal(err)
	}
	ev := mustEvent(t, s, `price=9 volume=200`)
	if got := sm.Match(ev); len(got) != 1 || got[0].Local != 42 {
		t.Fatalf("Match after id reuse = %v, want the reused subscription", got)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	// The wire form must carry only the live rows.
	dec, err := Decode(s, sm.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Match(ev); len(got) != 1 || got[0].Local != 42 {
		t.Fatalf("Match after round trip = %v, want the reused subscription", got)
	}
}

// TestRemoveKeyIsDeferred pins the performance contract behind the
// amortized unsubscribe: RemoveKey unregisters the id immediately (no
// stale matches) but leaves row sweeping to the next purge point, and
// every read entry point observes post-purge state.
func TestRemoveKeyIsDeferred(t *testing.T) {
	s := stockSchema(t)
	sm := New(s, interval.Lossy)
	for i := 1; i <= 8; i++ {
		if err := sm.Insert(id(0, subid.LocalID(i)), mustSub(t, s, `price > 8 && volume > 100`)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 4; i++ {
		sm.RemoveKey(id(0, subid.LocalID(i)).Key())
	}
	if sm.NumSubscriptions() != 4 {
		t.Fatalf("NumSubscriptions = %d, want 4", sm.NumSubscriptions())
	}
	if got := sm.Match(mustEvent(t, s, `price=9 volume=200`)); len(got) != 4 {
		t.Fatalf("Match returned %d ids, want the 4 live ones", len(got))
	}
	st := sm.Stats()
	if st.Subscriptions != 4 {
		t.Fatalf("Stats.Subscriptions = %d, want 4", st.Subscriptions)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
}
