package summary

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// TestMergeCommutative: A⊕B and B⊕A are behaviourally identical — they
// report the same ids for any event (multi-broker summaries must not
// depend on merge order, since Algorithm 2 merges in topology order).
func TestMergeCommutative(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		a := New(s, interval.Lossy)
		b := New(s, interval.Lossy)
		for i := 0; i < 40; i++ {
			if err := a.Insert(subid.ID{Broker: 1, Local: subid.LocalID(i)}, randomSubscription(rng, s)); err != nil {
				t.Fatal(err)
			}
			if err := b.Insert(subid.ID{Broker: 2, Local: subid.LocalID(i)}, randomSubscription(rng, s)); err != nil {
				t.Fatal(err)
			}
		}
		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 200; probe++ {
			ev := randomEvent(rng, s)
			if !reflect.DeepEqual(ab.MatchKeys(ev), ba.MatchKeys(ev)) {
				t.Fatalf("merge not commutative on %s:\nA⊕B %v\nB⊕A %v",
					ev.Format(s), ab.MatchKeys(ev), ba.MatchKeys(ev))
			}
		}
	}
}

// TestMergeAssociativeBehaviour: (A⊕B)⊕C ≡ A⊕(B⊕C) behaviourally.
func TestMergeAssociativeBehaviour(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(9))
	build := func(broker subid.BrokerID) *Summary {
		sm := New(s, interval.Lossy)
		for i := 0; i < 25; i++ {
			if err := sm.Insert(subid.ID{Broker: broker, Local: subid.LocalID(i)}, randomSubscription(rng, s)); err != nil {
				t.Fatal(err)
			}
		}
		return sm
	}
	a, b, c := build(1), build(2), build(3)
	left := a.Clone()
	if err := left.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := b.Clone()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := a.Clone()
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 500; probe++ {
		ev := randomEvent(rng, s)
		if !reflect.DeepEqual(left.MatchKeys(ev), right.MatchKeys(ev)) {
			t.Fatalf("merge not associative on %s", ev.Format(s))
		}
	}
}

// TestRemoveRestoresAbsence: inserting then removing a subscription leaves
// no trace in matching behaviour relative to a summary that never saw it.
func TestRemoveRestoresAbsence(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(10))
	base := New(s, interval.Lossy)
	subs := make(map[uint64]bool)
	for i := 0; i < 30; i++ {
		id := subid.ID{Broker: 1, Local: subid.LocalID(i)}
		if err := base.Insert(id, randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
		subs[id.Key()] = true
	}
	// A copy that takes 10 extra subscriptions and then removes them.
	churned := base.Clone()
	extras := make([]subid.ID, 10)
	for i := range extras {
		extras[i] = subid.ID{Broker: 2, Local: subid.LocalID(i)}
		if err := churned.Insert(extras[i], randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range extras {
		churned.Remove(id)
	}
	if churned.NumSubscriptions() != base.NumSubscriptions() {
		t.Fatalf("subscriptions = %d, want %d", churned.NumSubscriptions(), base.NumSubscriptions())
	}
	for probe := 0; probe < 1000; probe++ {
		ev := randomEvent(rng, s)
		got := churned.MatchKeys(ev)
		gotSet := make(map[uint64]bool, len(got))
		for _, k := range got {
			if !subs[k] {
				t.Fatalf("ghost id %d after removal on %s", k, ev.Format(s))
			}
			gotSet[k] = true
		}
		// No false negatives versus base: removal must not take other ids
		// with it. (The churned summary may report a SUPERSET: a removed
		// subscription can leave a generalized SACS pattern behind, which
		// is the documented lossy behaviour — precision is restored by the
		// owner's exact re-match.)
		for _, k := range base.MatchKeys(ev) {
			if !gotSet[k] {
				t.Fatalf("false negative after churn on %s: id %d missing", ev.Format(s), k)
			}
		}
	}
}

// TestEncodeDeterministicAcrossClones: Encode must be a pure function of
// summary content — clones encode identically.
func TestEncodeDeterministicAcrossClones(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(11))
	sm := New(s, interval.Lossy)
	for i := 0; i < 60; i++ {
		if err := sm.Insert(subid.ID{Broker: 3, Local: subid.LocalID(i)}, randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
	}
	a := sm.Encode(nil)
	b := sm.Clone().Encode(nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("clone encodes differently")
	}
	// Decode → encode is also stable.
	back, err := Decode(s, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Encode(nil), a) {
		t.Fatal("decode/encode not a fixed point")
	}
}

// TestCompactPreservesMatching: Summary.Compact never changes MatchKeys.
func TestCompactPreservesMatching(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(22))
	sm := New(s, interval.Lossy)
	var live []subid.ID
	for i := 0; i < 200; i++ {
		id := subid.ID{Broker: 1, Local: subid.LocalID(i)}
		if err := sm.Insert(id, randomSubscription(rng, s)); err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	for i := 0; i < 80; i++ {
		j := rng.Intn(len(live))
		sm.Remove(live[j])
		live = append(live[:j], live[j+1:]...)
	}
	events := make([]*schema.Event, 300)
	before := make([][]uint64, len(events))
	for i := range events {
		events[i] = randomEvent(rng, s)
		before[i] = sm.MatchKeys(events[i])
	}
	merged := sm.Compact()
	t.Logf("Compact eliminated %d rows", merged)
	for i, ev := range events {
		if !reflect.DeepEqual(sm.MatchKeys(ev), before[i]) {
			t.Fatalf("matching changed after Compact on %s", ev.Format(s))
		}
	}
}

// TestValidateAfterChurn: the cross-structure invariants hold through
// random insert/remove/merge/compact sequences, and Validate catches a
// deliberately corrupted registry.
func TestValidateAfterChurn(t *testing.T) {
	s := stockSchema(t)
	rng := rand.New(rand.NewSource(23))
	sm := New(s, interval.Lossy)
	var live []subid.ID
	for step := 0; step < 400; step++ {
		switch {
		case rng.Intn(3) > 0 || len(live) == 0:
			id := subid.ID{Broker: subid.BrokerID(rng.Intn(4)), Local: subid.LocalID(step)}
			if err := sm.Insert(id, randomSubscription(rng, s)); err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		default:
			j := rng.Intn(len(live))
			sm.Remove(live[j])
			live = append(live[:j], live[j+1:]...)
		}
		if step%40 == 0 {
			sm.Compact()
			if err := sm.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	other := New(s, interval.Lossy)
	if err := other.Insert(subid.ID{Broker: 9, Local: 1}, randomSubscription(rng, s)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Merge(other); err != nil {
		t.Fatal(err)
	}
	if err := sm.Validate(); err != nil {
		t.Fatalf("after merge: %v", err)
	}
	// Corrupt the registry: Validate must notice.
	victim := subid.ID{Broker: 9, Local: 1}.Key()
	delete(sm.ids, victim)
	if err := sm.Validate(); err == nil {
		t.Fatal("Validate missed an unregistered id")
	}
}
