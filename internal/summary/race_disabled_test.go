//go:build !race

package summary

// raceEnabled reports whether the race detector is compiled in; allocation
// assertions are skipped under -race because instrumentation allocates.
const raceEnabled = false
