// Package par is the repo's single bounded-worker-pool primitive,
// extracted from core so leaf packages (propagation, subgroup) can fan
// work out without importing the live engine. core.Sweep remains as a
// delegating alias for existing callers.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs fn(i) for every i in [0, n) across a bounded pool of worker
// goroutines. workers <= 0 means one per available CPU; workers == 1 runs
// inline with no goroutines. Indices are handed out by an atomic counter,
// so results are deterministic as long as fn(i) writes only to index-i
// state (the ordered-merge pattern: fill slot i, combine after Sweep
// returns). Sweep returns when every index has completed.
func Sweep(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SweepErr is Sweep for per-index functions that can fail. Every index
// runs regardless of other indices' failures; the returned error is the
// one from the lowest failing index, which keeps the result independent
// of goroutine scheduling.
func SweepErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	Sweep(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
