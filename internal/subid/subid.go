// Package subid implements the subscription identifiers of Section 3.2 of
// the subscription-summarization paper. An id is the concatenation of three
// parts:
//
//	c1 — the id of the broker that owns the subscription
//	     (⌈log2(total brokers)⌉ bits),
//	c2 — the broker-local id of the subscription
//	     (⌈log2(max outstanding subscriptions per broker)⌉ bits),
//	c3 — a bitmap with one bit per schema attribute, set for every
//	     attribute the subscription constrains (n_t bits).
//
// c3 lets the matching algorithm (Algorithm 1, step 2) decide, from the id
// alone, how many attribute lists a subscription must appear in to match —
// no subscription entity is ever consulted. Layout captures the bit widths
// so ids can be packed to their exact wire size.
package subid

import (
	"fmt"
	"math/bits"
	"strings"
)

// BrokerID identifies a broker (the c1 component).
type BrokerID uint32

// LocalID identifies a subscription within its owning broker (c2).
type LocalID uint32

// Mask is an attribute bitmap (the c3 component): bit i is set iff the
// subscription constrains attribute i. The zero Mask has no bits set and
// must be sized with NewMask before Set for attribute ids ≥ 64.
type Mask []uint64

// NewMask returns a mask able to hold attrCount attribute bits.
func NewMask(attrCount int) Mask {
	return make(Mask, (attrCount+63)/64)
}

// MaskOf builds a mask (sized for attrCount) with the given bits set.
func MaskOf(attrCount int, attrs ...int) Mask {
	m := NewMask(attrCount)
	for _, a := range attrs {
		m.Set(a)
	}
	return m
}

// Set sets bit a, growing the mask if needed.
func (m *Mask) Set(a int) {
	word := a / 64
	for word >= len(*m) {
		*m = append(*m, 0)
	}
	(*m)[word] |= 1 << (a % 64)
}

// Has reports whether bit a is set.
func (m Mask) Has(a int) bool {
	word := a / 64
	return word < len(m) && m[word]&(1<<(a%64)) != 0
}

// Count returns the number of set bits (the number of constrained
// attributes).
func (m Mask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bits returns the set bit positions in ascending order.
func (m Mask) Bits() []int {
	out := make([]int, 0, m.Count())
	for wi, w := range m {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// Equal reports whether two masks have the same set bits (ignoring
// trailing zero words).
func (m Mask) Equal(o Mask) bool {
	long, short := m, o
	if len(long) < len(short) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the mask.
func (m Mask) Clone() Mask {
	out := make(Mask, len(m))
	copy(out, m)
	return out
}

// String renders the mask as its ascending bit positions, e.g. "{3,5,6}".
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, bit := range m.Bits() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", bit)
	}
	b.WriteByte('}')
	return b.String()
}

// ID is a subscription id: the (c1, c2, c3) triple. (Broker, Local) is a
// system-wide unique key; Attrs is derived metadata used by matching.
type ID struct {
	Broker BrokerID
	Local  LocalID
	Attrs  Mask
}

// Key packs the identity components (c1, c2) into a comparable uint64 for
// use as a map key. c3 is derived from the subscription and carried for
// matching, so it does not participate in identity.
func (id ID) Key() uint64 {
	return uint64(id.Broker)<<32 | uint64(id.Local)
}

// KeyParts recovers (c1, c2) from a Key value.
func KeyParts(key uint64) (BrokerID, LocalID) {
	return BrokerID(key >> 32), LocalID(key & 0xFFFFFFFF)
}

// NumAttrs returns the number of attributes the subscription constrains
// (the popcount of c3) — the matching algorithm's per-id target counter.
func (id ID) NumAttrs() int { return id.Attrs.Count() }

// String renders the id as "B<broker>/S<local><attrs>".
func (id ID) String() string {
	return fmt.Sprintf("B%d/S%d%s", id.Broker, id.Local, id.Attrs)
}

// Layout fixes the bit widths of the three id components for a deployment,
// per Section 3.2: BrokerBits = ⌈log2(brokers)⌉, LocalBits =
// ⌈log2(max outstanding subscriptions per broker)⌉, AttrCount = n_t.
type Layout struct {
	BrokerBits int
	LocalBits  int
	AttrCount  int
}

// NewLayout derives a layout from deployment limits.
func NewLayout(numBrokers, maxSubsPerBroker, attrCount int) (Layout, error) {
	if numBrokers < 1 || maxSubsPerBroker < 1 || attrCount < 1 {
		return Layout{}, fmt.Errorf("subid: layout limits must be positive (brokers=%d subs=%d attrs=%d)",
			numBrokers, maxSubsPerBroker, attrCount)
	}
	l := Layout{
		BrokerBits: bitsFor(numBrokers),
		LocalBits:  bitsFor(maxSubsPerBroker),
		AttrCount:  attrCount,
	}
	if l.BrokerBits > 32 || l.LocalBits > 32 {
		return Layout{}, fmt.Errorf("subid: layout exceeds 32-bit component limits")
	}
	return l, nil
}

// bitsFor returns ⌈log2(n)⌉ with a floor of 1 bit.
func bitsFor(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// TotalBits returns the id's size in bits: |c1| + |c2| + |c3|.
func (l Layout) TotalBits() int { return l.BrokerBits + l.LocalBits + l.AttrCount }

// WireSize returns the id's packed size in bytes (the paper's s_id; with
// the Table 2 deployment — 24 brokers, 10 attributes — ids fit in 4 bytes
// when LocalBits ≤ 17).
func (l Layout) WireSize() int { return (l.TotalBits() + 7) / 8 }

// Validate checks that an id fits the layout.
func (l Layout) Validate(id ID) error {
	if l.BrokerBits < 32 && uint64(id.Broker) >= 1<<l.BrokerBits {
		return fmt.Errorf("subid: broker %d exceeds %d-bit c1", id.Broker, l.BrokerBits)
	}
	if l.LocalBits < 32 && uint64(id.Local) >= 1<<l.LocalBits {
		return fmt.Errorf("subid: local id %d exceeds %d-bit c2", id.Local, l.LocalBits)
	}
	for _, b := range id.Attrs.Bits() {
		if b >= l.AttrCount {
			return fmt.Errorf("subid: attribute bit %d exceeds c3 width %d", b, l.AttrCount)
		}
	}
	return nil
}

// Pack appends the id's exact bit-packed wire form to buf: c1, then c2,
// then c3, least-significant bit first.
func (l Layout) Pack(buf []byte, id ID) []byte {
	w := bitWriter{buf: buf}
	w.write(uint64(id.Broker), l.BrokerBits)
	w.write(uint64(id.Local), l.LocalBits)
	for i := 0; i < l.AttrCount; i += 64 {
		var word uint64
		if i/64 < len(id.Attrs) {
			word = id.Attrs[i/64]
		}
		n := l.AttrCount - i
		if n > 64 {
			n = 64
		}
		w.write(word, n)
	}
	return w.flush()
}

// Unpack decodes an id from the first WireSize() bytes of buf.
func (l Layout) Unpack(buf []byte) (ID, error) {
	if len(buf) < l.WireSize() {
		return ID{}, fmt.Errorf("subid: short buffer: %d < %d", len(buf), l.WireSize())
	}
	r := bitReader{buf: buf}
	var id ID
	id.Broker = BrokerID(r.read(l.BrokerBits))
	id.Local = LocalID(r.read(l.LocalBits))
	id.Attrs = NewMask(l.AttrCount)
	for i := 0; i < l.AttrCount; i += 64 {
		n := l.AttrCount - i
		if n > 64 {
			n = 64
		}
		id.Attrs[i/64] = r.read(n)
	}
	return id, nil
}

// bitWriter packs little-endian bit fields into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nCur int
}

func (w *bitWriter) write(v uint64, n int) {
	for n > 0 {
		take := 8 - w.nCur
		if take > n {
			take = n
		}
		w.cur |= (v & ((1 << take) - 1)) << w.nCur
		v >>= take
		n -= take
		w.nCur += take
		if w.nCur == 8 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur, w.nCur = 0, 0
		}
	}
}

func (w *bitWriter) flush() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitReader reads little-endian bit fields from a byte slice.
type bitReader struct {
	buf []byte
	pos int // bit position
}

func (r *bitReader) read(n int) uint64 {
	var out uint64
	shift := 0
	for n > 0 {
		byteIdx := r.pos / 8
		bitIdx := r.pos % 8
		take := 8 - bitIdx
		if take > n {
			take = n
		}
		var b byte
		if byteIdx < len(r.buf) {
			b = r.buf[byteIdx]
		}
		out |= uint64((b>>bitIdx)&((1<<take)-1)) << shift
		shift += take
		n -= take
		r.pos += take
	}
	return out
}
