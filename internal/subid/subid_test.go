package subid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskSetHasCount(t *testing.T) {
	m := NewMask(7)
	for _, b := range []int{3, 5, 6} {
		m.Set(b)
	}
	for _, b := range []int{3, 5, 6} {
		if !m.Has(b) {
			t.Errorf("bit %d not set", b)
		}
	}
	for _, b := range []int{0, 1, 2, 4} {
		if m.Has(b) {
			t.Errorf("bit %d unexpectedly set", b)
		}
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	got := m.Bits()
	want := []int{3, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits = %v, want %v", got, want)
		}
	}
	if m.String() != "{3,5,6}" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMaskGrowsAcrossWords(t *testing.T) {
	var m Mask
	m.Set(0)
	m.Set(63)
	m.Set(64)
	m.Set(130)
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	for _, b := range []int{0, 63, 64, 130} {
		if !m.Has(b) {
			t.Errorf("bit %d not set", b)
		}
	}
	if m.Has(129) || m.Has(65) {
		t.Error("spurious bits set")
	}
}

func TestMaskEqualIgnoresTrailingZeros(t *testing.T) {
	a := MaskOf(7, 1, 3)
	b := MaskOf(200, 1, 3) // longer backing array, same bits
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("masks with same bits not Equal")
	}
	c := MaskOf(200, 1, 3, 130)
	if a.Equal(c) || c.Equal(a) {
		t.Fatal("masks with different bits Equal")
	}
}

func TestMaskCloneIndependent(t *testing.T) {
	a := MaskOf(7, 2)
	b := a.Clone()
	b.Set(5)
	if a.Has(5) {
		t.Fatal("Clone shares storage")
	}
}

func TestIDKeyRoundTrip(t *testing.T) {
	id := ID{Broker: 12345, Local: 67890}
	b, l := KeyParts(id.Key())
	if b != id.Broker || l != id.Local {
		t.Fatalf("KeyParts = %d,%d", b, l)
	}
	// Distinct (broker, local) pairs must produce distinct keys.
	seen := make(map[uint64]bool)
	for broker := BrokerID(0); broker < 50; broker++ {
		for local := LocalID(0); local < 50; local++ {
			k := ID{Broker: broker, Local: local}.Key()
			if seen[k] {
				t.Fatalf("key collision at %d/%d", broker, local)
			}
			seen[k] = true
		}
	}
}

// TestPaperFigure6 reproduces the worked example of Figure 6: a system of
// 4 brokers, 8 outstanding subscriptions each, 7 attributes. The depicted
// id is subscription 1 of broker 2 with constraints on attributes 3, 5, 6.
func TestPaperFigure6(t *testing.T) {
	l, err := NewLayout(4, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if l.BrokerBits != 2 || l.LocalBits != 3 || l.AttrCount != 7 {
		t.Fatalf("layout = %+v", l)
	}
	if l.TotalBits() != 12 {
		t.Fatalf("TotalBits = %d, want 12", l.TotalBits())
	}
	if l.WireSize() != 2 {
		t.Fatalf("WireSize = %d, want 2", l.WireSize())
	}
	id := ID{Broker: 2, Local: 1, Attrs: MaskOf(7, 3, 5, 6)}
	if err := l.Validate(id); err != nil {
		t.Fatal(err)
	}
	if id.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d, want 3", id.NumAttrs())
	}
	buf := l.Pack(nil, id)
	if len(buf) != 2 {
		t.Fatalf("packed size = %d, want 2", len(buf))
	}
	got, err := l.Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Broker != 2 || got.Local != 1 || !got.Attrs.Equal(id.Attrs) {
		t.Fatalf("round trip = %v", got)
	}
}

func TestLayoutBitWidths(t *testing.T) {
	cases := []struct {
		brokers, subs, attrs        int
		brokerBits, localBits, wire int
	}{
		{1000, 1_000_000, 10, 10, 20, 5}, // the paper's running sizes
		{24, 1000, 10, 5, 10, 4},         // Table 2 deployment: s_id = 4
		{2, 2, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1},
		{256, 256, 64, 8, 8, 10},
	}
	for _, c := range cases {
		l, err := NewLayout(c.brokers, c.subs, c.attrs)
		if err != nil {
			t.Errorf("NewLayout(%d,%d,%d): %v", c.brokers, c.subs, c.attrs, err)
			continue
		}
		if l.BrokerBits != c.brokerBits || l.LocalBits != c.localBits {
			t.Errorf("NewLayout(%d,%d,%d) = %+v, want c1=%d c2=%d",
				c.brokers, c.subs, c.attrs, l, c.brokerBits, c.localBits)
		}
		if l.WireSize() != c.wire {
			t.Errorf("NewLayout(%d,%d,%d).WireSize = %d, want %d",
				c.brokers, c.subs, c.attrs, l.WireSize(), c.wire)
		}
	}
	if _, err := NewLayout(0, 1, 1); err == nil {
		t.Error("zero brokers accepted")
	}
	if _, err := NewLayout(1, 0, 1); err == nil {
		t.Error("zero subs accepted")
	}
	if _, err := NewLayout(1, 1, 0); err == nil {
		t.Error("zero attrs accepted")
	}
}

func TestLayoutValidateRejectsOverflow(t *testing.T) {
	l, _ := NewLayout(4, 8, 7)
	bad := []ID{
		{Broker: 4, Local: 0},
		{Broker: 0, Local: 8},
		{Broker: 0, Local: 0, Attrs: MaskOf(8, 7)},
	}
	for i, id := range bad {
		if err := l.Validate(id); err == nil {
			t.Errorf("bad id %d accepted", i)
		}
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	l, _ := NewLayout(24, 1000, 10)
	if _, err := l.Unpack([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

// Property: Pack/Unpack round-trips arbitrary in-range ids across random
// layouts, including attribute counts spanning multiple mask words.
func TestPackUnpackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(brokerSeed, localSeed uint32, attrSeed uint64) bool {
		attrs := 1 + rng.Intn(130)
		brokers := 1 + rng.Intn(5000)
		subs := 1 + rng.Intn(100000)
		l, err := NewLayout(brokers, subs, attrs)
		if err != nil {
			return false
		}
		id := ID{
			Broker: BrokerID(uint64(brokerSeed) % uint64(brokers)),
			Local:  LocalID(uint64(localSeed) % uint64(subs)),
			Attrs:  NewMask(attrs),
		}
		for b := 0; b < attrs; b++ {
			if attrSeed>>(b%64)&1 == 1 && rng.Intn(3) == 0 {
				id.Attrs.Set(b)
			}
		}
		if err := l.Validate(id); err != nil {
			return false
		}
		buf := l.Pack(nil, id)
		if len(buf) != l.WireSize() {
			return false
		}
		got, err := l.Unpack(buf)
		if err != nil {
			return false
		}
		return got.Broker == id.Broker && got.Local == id.Local && got.Attrs.Equal(id.Attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackAppendsToBuffer(t *testing.T) {
	l, _ := NewLayout(24, 1000, 10)
	id := ID{Broker: 3, Local: 42, Attrs: MaskOf(10, 0, 9)}
	prefix := []byte{0xAA, 0xBB}
	buf := l.Pack(prefix, id)
	if len(buf) != 2+l.WireSize() {
		t.Fatalf("len = %d", len(buf))
	}
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatal("prefix clobbered")
	}
	got, err := l.Unpack(buf[2:])
	if err != nil || got.Broker != 3 || got.Local != 42 {
		t.Fatalf("unpack after prefix: %v %v", got, err)
	}
}
