package broadcast

import (
	"testing"

	"github.com/subsum/subsum/internal/topology"
)

func TestPropagateModelMatchesExactOnRing(t *testing.T) {
	// On a symmetric graph the mean-hops model and the exact walk agree.
	g := topology.Ring(8)
	model := Propagate(g, 10, 50)
	exact := PropagateExact(g, 10, 50)
	if model.Hops != exact.Hops {
		t.Fatalf("model hops %d != exact %d", model.Hops, exact.Hops)
	}
	if model.Bytes != exact.Bytes {
		t.Fatalf("model bytes %d != exact %d", model.Bytes, exact.Bytes)
	}
	if model.StorageBytes != exact.StorageBytes {
		t.Fatalf("storage %d != %d", model.StorageBytes, exact.StorageBytes)
	}
}

func TestPropagateScalesLinearlyInSigma(t *testing.T) {
	g := topology.CW24()
	a := PropagateExact(g, 10, 50)
	b := PropagateExact(g, 100, 50)
	if b.Hops != 10*a.Hops || b.Bytes != 10*a.Bytes || b.StorageBytes != 10*a.StorageBytes {
		t.Fatalf("not linear: %+v vs %+v", a, b)
	}
}

func TestStorageFormula(t *testing.T) {
	g := topology.CW24()
	s := Propagate(g, 7, 50)
	want := int64(24 * 24 * 7 * 50)
	if s.StorageBytes != want {
		t.Fatalf("storage = %d, want %d", s.StorageBytes, want)
	}
}

func TestModelCloseToExactOnBackbone(t *testing.T) {
	g := topology.CW24()
	model := Propagate(g, 50, 50)
	exact := PropagateExact(g, 50, 50)
	ratio := float64(model.Hops) / float64(exact.Hops)
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("model/exact hops ratio = %.4f", ratio)
	}
}
