// Package broadcast implements the paper's baseline: every broker
// broadcasts each of its raw subscriptions to every other broker
// (Section 5.2.1). The cost model is the paper's own:
//
//	bandwidth = (brokers − 1) × avg hops × brokers × σ × avg sub size
//
// where "avg hops" is the mean shortest-path hop count between broker
// pairs (subscriptions travel the overlay hop by hop to each destination).
// Storage: every broker stores every subscription in the system.
package broadcast

import "github.com/subsum/subsum/internal/topology"

// Stats accounts one broadcast propagation period.
type Stats struct {
	Hops         int64 // broker-to-broker messages (overlay hops)
	Bytes        int64
	StorageBytes int64
}

// Propagate returns the baseline's modelled cost for one period in which
// each of the n brokers sends sigma new subscriptions of subSize bytes to
// all others.
func Propagate(g *topology.Graph, sigma, subSize int) Stats {
	n := int64(g.Len())
	sub := int64(subSize)
	sig := int64(sigma)
	meanHops := g.MeanPairHops()
	hops := float64((n-1)*n*sig) * meanHops
	return Stats{
		Hops:         int64(hops + 0.5),
		Bytes:        int64(hops*float64(sub) + 0.5),
		StorageBytes: n * n * sig * sub,
	}
}

// PropagateExact walks the overlay instead of using the mean-hops model:
// each subscription travels the BFS shortest path to every other broker
// individually (no multicast sharing — the baseline is deliberately
// naive). It returns the same accounting, exactly.
func PropagateExact(g *topology.Graph, sigma, subSize int) Stats {
	var stats Stats
	n := g.Len()
	for src := 0; src < n; src++ {
		dist, _ := g.BFSFrom(topology.NodeID(src))
		var pathHops int64
		for dst, d := range dist {
			if dst != src && d > 0 {
				pathHops += int64(d)
			}
		}
		stats.Hops += pathHops * int64(sigma)
	}
	stats.Bytes = stats.Hops * int64(subSize)
	stats.StorageBytes = int64(n) * int64(n) * int64(sigma) * int64(subSize)
	return stats
}
