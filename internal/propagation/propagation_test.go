package propagation

import (
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// buildSummaries gives every broker one distinctive subscription so merged
// summaries are traceable: broker i subscribes num00 = 1000000+i.
func buildSummaries(t testing.TB, g *topology.Graph) ([]*summary.Summary, *schema.Schema) {
	t.Helper()
	s := schema.MustNew(schema.Attribute{Name: "num00", Type: schema.TypeFloat})
	out := make([]*summary.Summary, g.Len())
	for i := range out {
		out[i] = summary.New(s, interval.Lossy)
		sub, err := schema.NewSubscription(s, schema.Constraint{
			Attr: 0, Op: schema.OpEQ, Value: schema.FloatValue(float64(1000000 + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		id := subid.ID{Broker: subid.BrokerID(i), Local: 0}
		if err := out[i].Insert(id, sub); err != nil {
			t.Fatal(err)
		}
	}
	return out, s
}

// TestFigure7Walkthrough replays the paper's Figure 7 propagation example
// and checks every fact the text states.
func TestFigure7Walkthrough(t *testing.T) {
	g := topology.Figure7Tree()
	own, _ := buildSummaries(t, g)
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 1: the seven degree-1 brokers (1,3,4,6,9,12,13) send.
	var iter1 []int
	for _, s := range res.Sends {
		if s.Iteration == 1 {
			iter1 = append(iter1, int(s.From)+1)
		}
	}
	wantIter1 := []int{1, 3, 4, 6, 9, 12, 13}
	if len(iter1) != len(wantIter1) {
		t.Fatalf("iteration-1 senders = %v, want %v", iter1, wantIter1)
	}
	for i := range wantIter1 {
		if iter1[i] != wantIter1[i] {
			t.Fatalf("iteration-1 senders = %v, want %v", iter1, wantIter1)
		}
	}
	// Iteration 2: brokers 2, 7, 10 send.
	var iter2 []int
	for _, s := range res.Sends {
		if s.Iteration == 2 {
			iter2 = append(iter2, int(s.From)+1)
		}
	}
	if len(iter2) != 3 || iter2[0] != 2 || iter2[1] != 7 || iter2[2] != 10 {
		t.Fatalf("iteration-2 senders = %v, want [2 7 10]", iter2)
	}
	// Broker 2 sends to 5 carrying Merged_Brokers {1,2}.
	for _, s := range res.Sends {
		if s.Iteration == 2 && s.From == 1 {
			if s.To != 4 {
				t.Fatalf("broker 2 sent to %d, want broker 5", int(s.To)+1)
			}
			if len(s.Brokers) != 2 {
				t.Fatalf("broker 2 Merged_Brokers = %v, want {1,2}", s.Brokers)
			}
		}
	}
	// "Broker 5 will have knowledge of the summaries of brokers 1 to 6":
	want5 := []int{0, 1, 2, 3, 4, 5}
	got5 := res.MergedBrokers[4].Bits()
	if len(got5) != len(want5) {
		t.Fatalf("broker 5 Merged_Brokers = %v, want brokers 1-6", got5)
	}
	for i := range want5 {
		if got5[i] != want5[i] {
			t.Fatalf("broker 5 Merged_Brokers = %v, want brokers 1-6", got5)
		}
	}
	// Broker 8 merged brokers 7, 9, 10 (plus itself).
	got8 := res.MergedBrokers[7].Bits()
	want8 := []int{6, 7, 8, 9}
	if len(got8) != len(want8) {
		t.Fatalf("broker 8 Merged_Brokers = %v, want {7,8,9,10}", got8)
	}
	// Hops: fewer than the number of brokers.
	if res.Hops >= g.Len() {
		t.Fatalf("hops = %d, want < %d", res.Hops, g.Len())
	}
	if res.Hops != 10 {
		t.Fatalf("hops = %d, want 10 (7 + 3 sends)", res.Hops)
	}
	if !res.TotalCoverage() {
		t.Fatal("some broker's subscriptions were lost")
	}
	trace := res.FormatTrace()
	if !strings.Contains(trace, "iteration 1:") || !strings.Contains(trace, "broker 2 -> broker 5") {
		t.Fatalf("trace = %s", trace)
	}
}

// TestMergedSummariesMatchCoverage: broker i's merged summary must report
// exactly the subscriptions of the brokers in its Merged_Brokers set.
func TestMergedSummariesMatchCoverage(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.Figure7Tree(),
		topology.CW24(),
		topology.Random(20, 8, 7),
		topology.Ring(9),
		topology.Star(8),
	} {
		own, s := buildSummaries(t, g)
		res, err := Run(g, own, DefaultCostModel())
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < g.Len(); j++ {
				ev, err := schema.NewEvent(s, map[string]schema.Value{
					"num00": schema.FloatValue(float64(1000000 + j)),
				})
				if err != nil {
					t.Fatal(err)
				}
				matched := res.Merged[i].Match(ev)
				wantMatch := res.MergedBrokers[i].Has(j)
				if wantMatch && (len(matched) != 1 || matched[0].Broker != subid.BrokerID(j)) {
					t.Fatalf("%s: broker %d should know broker %d's subscription, got %v",
						g.Name(), i, j, matched)
				}
				if !wantMatch && len(matched) != 0 {
					t.Fatalf("%s: broker %d reported unknown broker %d's subscription",
						g.Name(), i, j)
				}
			}
		}
	}
}

func TestHopsAlwaysBelowBrokerCount(t *testing.T) {
	// Each broker sends at most once, so hops ≤ n on any topology. On
	// irregular topologies (the paper's backbone case) at least the
	// maximum-degree broker has no eligible target, giving the strict
	// "< number of brokers" of Section 5.2.1. Fully regular graphs (ring,
	// grid interiors) can reach exactly n.
	strict := []*topology.Graph{
		topology.CW24(),
		topology.RandomTree(30, 4),
		topology.Star(10),
		topology.Figure7Tree(),
	}
	for _, g := range strict {
		own, _ := buildSummaries(t, g)
		res, err := Run(g, own, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops >= g.Len() {
			t.Errorf("%s: hops = %d, want < %d brokers", g.Name(), res.Hops, g.Len())
		}
		if !res.TotalCoverage() {
			t.Errorf("%s: coverage lost", g.Name())
		}
	}
	loose := []*topology.Graph{
		topology.Random(40, 20, 3),
		topology.Grid(5, 5),
		topology.Ring(12),
	}
	for _, g := range loose {
		own, _ := buildSummaries(t, g)
		res, err := Run(g, own, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > g.Len() {
			t.Errorf("%s: hops = %d, want ≤ %d brokers", g.Name(), res.Hops, g.Len())
		}
		if !res.TotalCoverage() {
			t.Errorf("%s: coverage lost", g.Name())
		}
	}
}

func TestEachBrokerSendsAtMostOnce(t *testing.T) {
	g := topology.CW24()
	own, _ := buildSummaries(t, g)
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[topology.NodeID]int)
	for _, s := range res.Sends {
		seen[s.From]++
		if s.Iteration != g.Degree(s.From) {
			t.Errorf("broker %d sent in iteration %d but has degree %d",
				s.From, s.Iteration, g.Degree(s.From))
		}
		if g.Degree(s.To) < g.Degree(s.From) {
			t.Errorf("broker %d (deg %d) sent to lower-degree %d (deg %d)",
				s.From, g.Degree(s.From), s.To, g.Degree(s.To))
		}
		if !g.HasEdge(s.From, s.To) {
			t.Errorf("send %d->%d is not an overlay edge", s.From, s.To)
		}
	}
	for node, count := range seen {
		if count > 1 {
			t.Errorf("broker %d sent %d times", node, count)
		}
	}
}

func TestBandwidthAccountingPositive(t *testing.T) {
	g := topology.CW24()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	own := make([]*summary.Summary, g.Len())
	for i := range own {
		own[i] = summary.New(gen.Schema(), interval.Lossy)
		for j := 0; j < 20; j++ {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := own[i].Insert(id, gen.Subscription()); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelBytes <= 0 || res.WireBytes <= 0 {
		t.Fatalf("bytes = %d model / %d wire", res.ModelBytes, res.WireBytes)
	}
	var sum int64
	for _, s := range res.Sends {
		if s.ModelBytes <= 0 {
			t.Fatalf("send %+v has no model bytes", s)
		}
		sum += int64(s.ModelBytes)
	}
	if sum != res.ModelBytes {
		t.Fatalf("send sum %d != total %d", sum, res.ModelBytes)
	}
	// Own summaries must not be mutated by the run.
	if own[0].NumSubscriptions() != 20 {
		t.Fatal("input summary mutated")
	}
}

func TestRunValidation(t *testing.T) {
	g := topology.Ring(3)
	if _, err := Run(g, nil, DefaultCostModel()); err == nil {
		t.Fatal("nil summaries accepted")
	}
	own, _ := buildSummaries(t, g)
	own[1] = nil
	if _, err := Run(g, own, DefaultCostModel()); err == nil {
		t.Fatal("nil summary accepted")
	}
}

func TestSingleBrokerDegenerate(t *testing.T) {
	g := topology.New("solo", 1)
	s := schema.MustNew(schema.Attribute{Name: "x", Type: schema.TypeInt})
	own := []*summary.Summary{summary.New(s, interval.Lossy)}
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 0 || !res.TotalCoverage() {
		t.Fatalf("res = %+v", res)
	}
}

// TestInstrumentFlight journals a Run's period boundaries through the
// process-wide flight hook.
func TestInstrumentFlight(t *testing.T) {
	rec := flight.NewRecorder(1 << 14)
	InstrumentFlight(rec)
	defer InstrumentFlight(nil)

	g := topology.Figure7Tree()
	own, _ := buildSummaries(t, g)
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}

	records := rec.Records()
	var start, end *flight.Record
	for i := range records {
		switch records[i].Type {
		case flight.EvPeriodStart:
			start = &records[i]
		case flight.EvPeriodEnd:
			end = &records[i]
		}
	}
	if start == nil || end == nil {
		t.Fatalf("period boundaries not journaled: %+v", records)
	}
	if start.A != int64(g.Len()) {
		t.Fatalf("period start broker count = %d, want %d", start.A, g.Len())
	}
	if end.A != int64(res.Hops) || end.B != res.WireBytes || end.C != res.ModelBytes {
		t.Fatalf("period end = %+v, want hops=%d wire=%d model=%d", end, res.Hops, res.WireBytes, res.ModelBytes)
	}

	// Detached: no further journaling.
	InstrumentFlight(nil)
	before := rec.Stats().NextSeq
	if _, err := Run(g, own, DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	if got := rec.Stats().NextSeq; got != before {
		t.Fatalf("detached recorder still journaled: %d -> %d", before, got)
	}
}
