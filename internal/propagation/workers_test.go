package propagation

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/par"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestRunWorkersDifferential: the parallel period must be bit-identical
// at every pool width — same send log, same Merged_Brokers sets, and
// byte-identical merged summaries — because target selection is serial
// and per-target merges apply deliveries in selection order.
func TestRunWorkersDifferential(t *testing.T) {
	ts, _ := topology.TransitStubRegions(64, 11)
	for _, g := range []*topology.Graph{
		topology.Figure7Tree(),
		topology.CW24(),
		ts,
	} {
		own := workloadSummaries(t, g, 8)
		want, err := RunWorkers(g, own, DefaultCostModel(), 1)
		if err != nil {
			t.Fatalf("%s: serial RunWorkers: %v", g.Name(), err)
		}
		for _, workers := range []int{2, 4, 8, 0} {
			got, err := RunWorkers(g, own, DefaultCostModel(), workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", g.Name(), workers, err)
			}
			if got.Hops != want.Hops || got.WireBytes != want.WireBytes || got.ModelBytes != want.ModelBytes {
				t.Fatalf("%s workers=%d: totals (%d hops, %d wire, %d model) != serial (%d, %d, %d)",
					g.Name(), workers, got.Hops, got.WireBytes, got.ModelBytes,
					want.Hops, want.WireBytes, want.ModelBytes)
			}
			if !reflect.DeepEqual(got.Sends, want.Sends) {
				t.Fatalf("%s workers=%d: send log differs from serial", g.Name(), workers)
			}
			for i := range got.Merged {
				if !reflect.DeepEqual(got.MergedBrokers[i].Bits(), want.MergedBrokers[i].Bits()) {
					t.Fatalf("%s workers=%d: broker %d Merged_Brokers differ", g.Name(), workers, i)
				}
				if !bytes.Equal(got.Merged[i].Encode(nil), want.Merged[i].Encode(nil)) {
					t.Fatalf("%s workers=%d: broker %d merged summary differs", g.Name(), workers, i)
				}
			}
		}
	}
}

// TestRunWorkersMatchesReference pins the parallel path to the
// clone-per-send reference on a generated large graph, where iteration
// counts and delivery groupings differ most from the hand-built fixtures.
func TestRunWorkersMatchesReference(t *testing.T) {
	g, _ := topology.TransitStubRegions(96, 5)
	own := workloadSummaries(t, g, 6)
	got, err := RunWorkers(g, own, DefaultCostModel(), 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunReference(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hops != want.Hops || got.ModelBytes != want.ModelBytes {
		t.Fatalf("hops/model bytes (%d, %d) != reference (%d, %d)",
			got.Hops, got.ModelBytes, want.Hops, want.ModelBytes)
	}
	if len(got.Sends) != len(want.Sends) {
		t.Fatalf("%d sends != reference %d", len(got.Sends), len(want.Sends))
	}
	for i := range got.Merged {
		if !bytes.Equal(got.Merged[i].Encode(nil), want.Merged[i].Encode(nil)) {
			t.Fatalf("broker %d merged summary differs from reference", i)
		}
	}
}

// TestRunWorkersChurnSoak interleaves parallel periods with parallel
// per-broker churn — the pattern the live engine runs every period.
// Each round rebuilds a slice of the brokers' own summaries under
// par.Sweep (slot-owned writes), then runs a parallel period and checks
// it against the serial run of the same inputs. Run under -race this is
// the soak required by the issue.
func TestRunWorkersChurnSoak(t *testing.T) {
	g, _ := topology.TransitStubRegions(48, 3)
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := g.Len()
	// Pre-generate deterministic subscription pools per broker; churn
	// swaps which half of the pool each broker currently owns.
	const poolSize = 8
	pools := make([][]*schema.Subscription, n)
	for i := range pools {
		pools[i] = make([]*schema.Subscription, poolSize)
		for j := range pools[i] {
			pools[i][j] = gen.Subscription()
		}
	}
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		own := make([]*summary.Summary, n)
		if err := par.SweepErr(n, 0, func(i int) error {
			sm := summary.New(gen.Schema(), interval.Lossy)
			for j := 0; j < poolSize/2; j++ {
				idx := (j + round*3 + i) % poolSize
				id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(idx)}
				if err := sm.Insert(id, pools[i][idx]); err != nil {
					return err
				}
			}
			own[i] = sm
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		got, err := RunWorkers(g, own, DefaultCostModel(), 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := RunWorkers(g, own, DefaultCostModel(), 1)
		if err != nil {
			t.Fatalf("round %d serial: %v", round, err)
		}
		for i := range got.Merged {
			if !bytes.Equal(got.Merged[i].Encode(nil), want.Merged[i].Encode(nil)) {
				t.Fatalf("round %d: broker %d parallel merged state diverged from serial", round, i)
			}
		}
	}
}
