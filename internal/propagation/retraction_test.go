package propagation

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// TestRunCarriesRetractions models a churn period standalone: broker 0's
// delta carries only a retraction (its old subscription left). The
// retraction must ride the Algorithm 2 flow to every broker 0's summary
// reaches, survive intermediate merges for onward propagation, and — when
// the period result is folded into a long-lived merged summary that still
// holds the dead row — remove it.
func TestRunCarriesRetractions(t *testing.T) {
	g := topology.New("line3", 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)

	own, s := buildSummaries(t, g)
	deadKey := subid.ID{Broker: 0, Local: 7}.Key()
	own[0].AddRetraction(deadKey)

	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// On the 1–2–1 line, the degree-1 ends send to the middle; the middle
	// (no higher- or equal-degree neighbor) sends nowhere. Broker 1 is
	// therefore exactly the receiver set of broker 0's delta.
	if got := res.Merged[1].NumRetractions(); got != 1 {
		t.Fatalf("middle broker retains %d retractions, want 1", got)
	}
	if res.Merged[2].NumRetractions() != 0 {
		t.Fatalf("broker 2 received a retraction that never flowed its way")
	}

	// A long-lived merged summary still holding the dead row applies the
	// period result and shrinks.
	stale := summary.New(s, interval.Lossy)
	sub, err := schema.NewSubscription(s, schema.Constraint{
		Attr: 0, Op: schema.OpGT, Value: schema.FloatValue(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.Insert(subid.ID{Broker: 0, Local: 7}, sub); err != nil {
		t.Fatal(err)
	}
	if err := stale.Merge(res.Merged[1]); err != nil {
		t.Fatal(err)
	}
	if stale.Contains(subid.ID{Broker: 0, Local: 7}) {
		t.Fatalf("stale row survived the retraction-carrying merge")
	}
	if !stale.Contains(subid.ID{Broker: 1, Local: 0}) {
		t.Fatalf("live rows were lost applying the period result")
	}
	stale.ClearRetractions() // the broker.MergeSummary discipline
	if stale.NumRetractions() != 0 {
		t.Fatalf("retractions not clearable on a long-lived merged summary")
	}
}

// TestRunReferenceMatchesRunUnderChurn extends the differential guarantee
// to retraction-carrying periods: the clone-free Run and the reference
// implementation must produce identical merged state.
func TestRunReferenceMatchesRunUnderChurn(t *testing.T) {
	g := topology.Figure7Tree()
	own, _ := buildSummaries(t, g)
	// Brokers 0 and 5 also retract one old id each.
	own[0].AddRetraction(subid.ID{Broker: 0, Local: 9}.Key())
	own[5].AddRetraction(subid.ID{Broker: 5, Local: 3}.Key())

	fast, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunReference(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Hops != ref.Hops || fast.ModelBytes != ref.ModelBytes {
		t.Fatalf("accounting diverged: hops %d/%d, model bytes %d/%d",
			fast.Hops, ref.Hops, fast.ModelBytes, ref.ModelBytes)
	}
	for i := range fast.Merged {
		fe, re := fast.Merged[i].Encode(nil), ref.Merged[i].Encode(nil)
		if string(fe) != string(re) {
			t.Fatalf("broker %d: merged state diverged between Run and RunReference (%d vs %d bytes)",
				i, len(fe), len(re))
		}
	}
}
