package propagation

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// workloadSummaries builds realistic per-broker summaries (sigma
// subscriptions each) from the paper's stock workload.
func workloadSummaries(t testing.TB, g *topology.Graph, sigma int) []*summary.Summary {
	t.Helper()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	own := make([]*summary.Summary, g.Len())
	for i := range own {
		own[i] = summary.New(gen.Schema(), interval.Lossy)
		for j := 0; j < sigma; j++ {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := own[i].Insert(id, gen.Subscription()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return own
}

// TestRunMatchesCloneReference is the differential test required by the
// clone-free rewrite: the pooled, MergeEncoded-based Run must produce
// byte-identical merged summaries, identical Merged_Brokers sets, and an
// identical send log (up to WireBytes, which moved from the v1 to the v2
// codec) versus the clone-per-send reference implementation.
func TestRunMatchesCloneReference(t *testing.T) {
	for _, tc := range []struct {
		g     *topology.Graph
		sigma int
	}{
		{topology.Figure7Tree(), 5},
		{topology.CW24(), 20},
		{topology.Random(20, 8, 7), 10},
		{topology.Star(8), 10},
		{topology.Ring(9), 5},
	} {
		own := workloadSummaries(t, tc.g, tc.sigma)
		got, err := Run(tc.g, own, DefaultCostModel())
		if err != nil {
			t.Fatalf("%s: Run: %v", tc.g.Name(), err)
		}
		want, err := RunReference(tc.g, own, DefaultCostModel())
		if err != nil {
			t.Fatalf("%s: RunReference: %v", tc.g.Name(), err)
		}
		if got.Hops != want.Hops {
			t.Fatalf("%s: hops %d != reference %d", tc.g.Name(), got.Hops, want.Hops)
		}
		if got.ModelBytes != want.ModelBytes {
			t.Fatalf("%s: model bytes %d != reference %d", tc.g.Name(), got.ModelBytes, want.ModelBytes)
		}
		if len(got.Sends) != len(want.Sends) {
			t.Fatalf("%s: %d sends != reference %d", tc.g.Name(), len(got.Sends), len(want.Sends))
		}
		for i := range got.Sends {
			a, b := got.Sends[i], want.Sends[i]
			b.WireBytes = a.WireBytes // v2 vs v1; compared separately below
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: send %d differs: %+v vs reference %+v", tc.g.Name(), i, a, want.Sends[i])
			}
		}
		for i := range got.MergedBrokers {
			if !reflect.DeepEqual(got.MergedBrokers[i].Bits(), want.MergedBrokers[i].Bits()) {
				t.Fatalf("%s: broker %d Merged_Brokers %v != reference %v",
					tc.g.Name(), i, got.MergedBrokers[i].Bits(), want.MergedBrokers[i].Bits())
			}
		}
		for i := range got.Merged {
			if !bytes.Equal(got.Merged[i].Encode(nil), want.Merged[i].Encode(nil)) {
				t.Fatalf("%s: broker %d merged summary differs from reference", tc.g.Name(), i)
			}
		}
		// The v2 wire must beat the v1 wire whenever anything was sent.
		if got.Hops > 0 && got.WireBytes >= want.WireBytes {
			t.Fatalf("%s: v2 wire bytes %d not below v1 %d", tc.g.Name(), got.WireBytes, want.WireBytes)
		}
	}
}

// TestWireBytesAccounting: every send's WireBytes is the length of the
// shared encoded payload — the sender's merged summary at send time — and
// the totals are exact sums.
func TestWireBytesAccounting(t *testing.T) {
	g := topology.CW24()
	own := workloadSummaries(t, g, 10)
	// Pre-capture each broker's standalone encoded size: a broker of
	// degree 1 sends in iteration 1, before it can have received anything,
	// so its payload must be exactly its own summary's v2 wire form.
	ownSize := make([]int, g.Len())
	for i, sm := range own {
		ownSize[i] = sm.EncodedSize()
	}
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	var wire, model int64
	firstIter := res.Sends[0].Iteration
	for _, s := range res.Sends {
		if s.WireBytes <= 0 {
			t.Fatalf("send %+v has no wire bytes", s)
		}
		wire += int64(s.WireBytes)
		model += int64(s.ModelBytes)
		if s.Iteration == firstIter && g.Degree(s.From) == firstIter {
			if s.WireBytes != ownSize[s.From] {
				t.Errorf("iteration-%d sender %d: wire bytes %d != own encoded size %d",
					firstIter, s.From, s.WireBytes, ownSize[s.From])
			}
		}
	}
	if wire != res.WireBytes {
		t.Fatalf("send wire sum %d != total %d", wire, res.WireBytes)
	}
	if model != res.ModelBytes {
		t.Fatalf("send model sum %d != total %d", model, res.ModelBytes)
	}
}

// TestCopyOnReceive: Run must not clone summaries for brokers that never
// receive (their Merged entry aliases the input), and must never mutate
// any input summary either way.
func TestCopyOnReceive(t *testing.T) {
	g := topology.CW24()
	own := workloadSummaries(t, g, 5)
	before := make([][]byte, len(own))
	for i, sm := range own {
		before[i] = sm.Encode(nil)
	}
	res, err := Run(g, own, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	received := make([]bool, g.Len())
	for _, s := range res.Sends {
		received[s.To] = true
	}
	anyAliased := false
	for i := range own {
		if !received[i] {
			if res.Merged[i] != own[i] {
				t.Errorf("broker %d received nothing but Merged was cloned", i)
			}
			anyAliased = true
		} else if res.Merged[i] == own[i] {
			t.Errorf("broker %d received a summary but Merged aliases the input", i)
		}
		if !bytes.Equal(own[i].Encode(nil), before[i]) {
			t.Errorf("broker %d input summary mutated", i)
		}
	}
	if !anyAliased {
		t.Skip("topology has no receive-free brokers; aliasing unexercised")
	}
}
