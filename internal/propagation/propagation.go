// Package propagation implements Algorithm 2 of the
// subscription-summarization paper (Section 4.2): the degree-ordered,
// iterative propagation of multi-broker subscription summaries across the
// broker overlay.
//
// The protocol runs MAX_DEGREE iterations. In iteration i, every broker of
// degree i (1) merges its own summary with every summary received in
// previous iterations, updating its Merged_Brokers set, and (2) sends the
// merged summary and the set to one neighbor of equal or higher degree
// with which it has not yet communicated, preferring the neighbor with the
// smallest degree. Because every broker sends at most once, global
// propagation always costs fewer hops than there are brokers — the flat
// line of Figure 9.
package propagation

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/par"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// BrokerSet is a bitset over broker ids (the Merged_Brokers set).
type BrokerSet = subid.Mask

// CostModel fixes the storage sizes of the paper's cost equations:
// SST is s_st (arithmetic value size) and SID is s_id (subscription id
// size); both are 4 bytes in Table 2.
type CostModel struct {
	SST int
	SID int
}

// DefaultCostModel returns the Table 2 sizes.
func DefaultCostModel() CostModel { return CostModel{SST: 4, SID: 4} }

// Send records one summary transmission for tracing and accounting.
type Send struct {
	Iteration  int
	From, To   topology.NodeID
	Brokers    []int // Merged_Brokers carried with the summary
	ModelBytes int   // summary size under the paper's cost model
	WireBytes  int   // actual encoded size
}

// Result is the outcome of one propagation phase.
type Result struct {
	// Merged[i] is broker i's multi-broker summary after the phase: its
	// own subscriptions plus everything it received.
	Merged []*summary.Summary
	// MergedBrokers[i] is broker i's Merged_Brokers set.
	MergedBrokers []BrokerSet
	// Sends is the full transmission log in execution order.
	Sends []Send
	// Hops is the total number of broker-to-broker messages (= len(Sends)).
	Hops int
	// ModelBytes and WireBytes are the total bandwidth under the paper's
	// cost model and the real codec, respectively.
	ModelBytes int64
	WireBytes  int64

	// derived memoizes artifacts computed from this result by downstream
	// consumers — today the routing examination order — so N routers
	// built over one phase share one computation. Keys and values are
	// consumer-defined; stored values must be treated as immutable.
	derived sync.Map
}

// LoadDerived returns the memoized artifact stored under key, if any.
func (r *Result) LoadDerived(key any) (any, bool) { return r.derived.Load(key) }

// StoreDerived memoizes an artifact under key, returning the first value
// stored (winner of a racing duplicate computation).
func (r *Result) StoreDerived(key, value any) any {
	actual, _ := r.derived.LoadOrStore(key, value)
	return actual
}

// encBufPool recycles per-send encode buffers across Run invocations.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// propInstruments are the package's optional registry instruments. Run
// loads the pointer once per invocation; when unset (the default, and the
// benchmark configuration) the cost is that single atomic load plus a nil
// branch per recording site.
type propInstruments struct {
	runs         *metrics.Counter   // completed Algorithm 2 phases
	sends        *metrics.Counter   // summary transmissions
	wireBytes    *metrics.Counter   // cumulative encoded payload bytes
	modelBytes   *metrics.Counter   // cumulative cost-model bytes
	mergeSeconds *metrics.Histogram // per-delivery MergeEncoded latency
	periodBytes  *metrics.Histogram // wire bytes per completed phase
}

var instruments atomic.Pointer[propInstruments]

// recorder is the package's optional flight recorder, mirroring the
// process-wide shape of the instruments hook for the same reason: Run has
// no receiver.
var recorder atomic.Pointer[flight.Recorder]

// InstrumentFlight journals each Run's period boundaries (with hop and
// byte counts) and per-send merge failures into rec. Pass nil to detach
// (the default).
func InstrumentFlight(rec *flight.Recorder) {
	recorder.Store(rec)
}

// Instrument mirrors propagation accounting into r: propagation_runs,
// propagation_sends, propagation_wire_bytes, propagation_model_bytes
// counters plus propagation_merge_seconds and propagation_period_bytes
// histograms. Pass nil to detach (the default). The hook is process-wide
// because Run is a pure function with no receiver to hang state off.
func Instrument(r *metrics.Registry) {
	if r == nil {
		instruments.Store(nil)
		return
	}
	instruments.Store(&propInstruments{
		runs:         r.Counter("propagation_runs"),
		sends:        r.Counter("propagation_sends"),
		wireBytes:    r.Counter("propagation_wire_bytes"),
		modelBytes:   r.Counter("propagation_model_bytes"),
		mergeSeconds: r.Histogram("propagation_merge_seconds", metrics.DefLatencyBuckets),
		periodBytes:  r.Histogram("propagation_period_bytes", metrics.DefSizeBuckets),
	})
}

// Run executes Algorithm 2 over the overlay g, where own[i] is broker i's
// (delta) summary for this period. It returns the per-broker merged
// summaries, Merged_Brokers sets, and full cost accounting. own summaries
// are not mutated; a broker that receives nothing keeps Merged[i] as an
// alias of own[i] (copy-on-receive), so callers must treat Result.Merged
// as read-only.
//
// Run fans each iteration's per-broker work over all CPUs; see
// RunWorkers for the pool-width knob and the determinism argument.
func Run(g *topology.Graph, own []*summary.Summary, cost CostModel) (*Result, error) {
	return RunWorkers(g, own, cost, 0)
}

// RunWorkers is Run with an explicit worker-pool width (<= 0 means one
// worker per CPU, 1 runs fully serial). Results are bit-identical at any
// width:
//
//   - Target selection stays serial (it is a cheap scan, and it fixes the
//     deterministic Sends order).
//   - Payload encodes run in parallel across the iteration's senders.
//     Each broker sends at most once per phase, deliveries land only
//     after all of an iteration's encodes, and encoding touches only the
//     sender's own summary, so encodes never overlap on a summary —
//     provided own[] holds n distinct Summary values (aliasing two
//     brokers to one *Summary was never supported).
//   - Deliveries run in parallel across *targets*; each target applies
//     its own deliveries in Sends order, and a merge touches only the
//     target's summary plus the immutable payload bytes.
//
// Each send encodes the sender's merged summary once into a pooled
// buffer; the immutable byte slice is what travels (its length is the
// send's WireBytes) and the receiver folds it in with MergeEncoded — no
// per-send Clone, no intermediate decoded Summary.
func RunWorkers(g *topology.Graph, own []*summary.Summary, cost CostModel, workers int) (*Result, error) {
	n := g.Len()
	if len(own) != n {
		return nil, fmt.Errorf("propagation: %d summaries for %d brokers", len(own), n)
	}
	obs := instruments.Load()
	rec := recorder.Load()
	rec.Record(flight.EvPeriodStart, -1, int64(n), 0, 0, "")
	res := &Result{
		Merged:        make([]*summary.Summary, n),
		MergedBrokers: make([]BrokerSet, n),
	}
	for i := 0; i < n; i++ {
		if own[i] == nil {
			return nil, fmt.Errorf("propagation: nil summary for broker %d", i)
		}
		res.Merged[i] = own[i]
		res.MergedBrokers[i] = subid.NewMask(n)
		res.MergedBrokers[i].Set(i)
	}
	// owned[i] flips when Merged[i] becomes a private clone (first receive).
	owned := make([]bool, n)
	communicated := make([]map[topology.NodeID]bool, n)
	for i := range communicated {
		communicated[i] = make(map[topology.NodeID]bool)
	}

	type delivery struct {
		from, to   topology.NodeID
		payload    *[]byte // pooled wire-form summary, shared with WireBytes accounting
		brokers    BrokerSet
		modelBytes int
	}

	maxDegree := g.MaxDegree()
	var deliveries []delivery
	var targets []topology.NodeID // distinct delivery targets, first-seen order
	var perTarget map[topology.NodeID][]int
	for iter := 1; iter <= maxDegree; iter++ {
		deliveries = deliveries[:0]
		for node := 0; node < n; node++ {
			id := topology.NodeID(node)
			if g.Degree(id) != iter {
				continue
			}
			// Step 1 happened implicitly: res.Merged[node] already holds
			// own ⊕ everything received in previous iterations.
			target, ok := pickTarget(g, id, iter, communicated[node])
			if !ok {
				continue
			}
			brokers := res.MergedBrokers[node].Clone()
			communicated[node][target] = true
			communicated[target][id] = true
			deliveries = append(deliveries, delivery{from: id, to: target, brokers: brokers})
		}

		// Encode every sender's summary in parallel. Senders are distinct
		// brokers, so each task mutates (lazily compacts) only its own
		// summary.
		par.Sweep(len(deliveries), workers, func(i int) {
			d := &deliveries[i]
			payload := encBufPool.Get().(*[]byte)
			*payload = res.Merged[d.from].Encode((*payload)[:0])
			d.payload = payload
			d.modelBytes = res.Merged[d.from].SizeBytes(cost.SST, cost.SID)
		})
		for _, d := range deliveries {
			send := Send{
				Iteration:  iter,
				From:       d.from,
				To:         d.to,
				Brokers:    d.brokers.Bits(),
				ModelBytes: d.modelBytes,
				WireBytes:  len(*d.payload),
			}
			res.Sends = append(res.Sends, send)
			res.ModelBytes += int64(send.ModelBytes)
			res.WireBytes += int64(send.WireBytes)
		}

		// Deliveries land at the end of the iteration, so equal-degree
		// exchanges in the same iteration do not see each other's summary.
		// Parallelism is across targets; one target's deliveries apply in
		// send order, so the merged state is width-independent.
		targets = targets[:0]
		if perTarget == nil {
			perTarget = make(map[topology.NodeID][]int, 16)
		}
		for i, d := range deliveries {
			if _, seen := perTarget[d.to]; !seen {
				targets = append(targets, d.to)
			}
			perTarget[d.to] = append(perTarget[d.to], i)
		}
		err := par.SweepErr(len(targets), workers, func(ti int) error {
			to := targets[ti]
			if !owned[to] {
				res.Merged[to] = res.Merged[to].Clone()
				owned[to] = true
			}
			for _, di := range perTarget[to] {
				d := deliveries[di]
				var start time.Time
				if obs != nil {
					start = time.Now()
				}
				err := res.Merged[to].MergeEncoded(*d.payload)
				if obs != nil {
					obs.mergeSeconds.Observe(time.Since(start).Seconds())
				}
				encBufPool.Put(d.payload)
				if err != nil {
					rec.Record(flight.EvMergeError, int(to), 0, 0, 0, err.Error())
					return fmt.Errorf("propagation: merging at broker %d: %w", to, err)
				}
				for _, b := range d.brokers.Bits() {
					res.MergedBrokers[to].Set(b)
				}
			}
			return nil
		})
		for to := range perTarget {
			delete(perTarget, to)
		}
		if err != nil {
			return nil, err
		}
	}
	res.Hops = len(res.Sends)
	if obs != nil {
		obs.runs.Inc()
		obs.sends.Add(int64(res.Hops))
		obs.wireBytes.Add(res.WireBytes)
		obs.modelBytes.Add(res.ModelBytes)
		obs.periodBytes.Observe(float64(res.WireBytes))
	}
	rec.Record(flight.EvPeriodEnd, -1, int64(res.Hops), res.WireBytes, res.ModelBytes, "")
	return res, nil
}

// RunReference is the pre-optimization Algorithm 2 implementation: it
// deep-Clones the merged summary for every send, accounts wire bytes by
// actually encoding each payload with the fixed-width v1 codec (as the
// original EncodedSize did), and folds deliveries in as in-memory Summary
// values. It is retained as the differential-testing and benchmark
// baseline for Run — both must produce identical merged state, sends, and
// model bytes (WireBytes differ: v1 versus v2 encoding).
func RunReference(g *topology.Graph, own []*summary.Summary, cost CostModel) (*Result, error) {
	n := g.Len()
	if len(own) != n {
		return nil, fmt.Errorf("propagation: %d summaries for %d brokers", len(own), n)
	}
	res := &Result{
		Merged:        make([]*summary.Summary, n),
		MergedBrokers: make([]BrokerSet, n),
	}
	for i := 0; i < n; i++ {
		if own[i] == nil {
			return nil, fmt.Errorf("propagation: nil summary for broker %d", i)
		}
		res.Merged[i] = own[i].Clone()
		res.MergedBrokers[i] = subid.NewMask(n)
		res.MergedBrokers[i].Set(i)
	}
	communicated := make([]map[topology.NodeID]bool, n)
	for i := range communicated {
		communicated[i] = make(map[topology.NodeID]bool)
	}

	type delivery struct {
		to      topology.NodeID
		payload *summary.Summary
		brokers BrokerSet
	}

	maxDegree := g.MaxDegree()
	for iter := 1; iter <= maxDegree; iter++ {
		var deliveries []delivery
		for node := 0; node < n; node++ {
			id := topology.NodeID(node)
			if g.Degree(id) != iter {
				continue
			}
			target, ok := pickTarget(g, id, iter, communicated[node])
			if !ok {
				continue
			}
			payload := res.Merged[node].Clone()
			brokers := res.MergedBrokers[node].Clone()
			communicated[node][target] = true
			communicated[target][id] = true
			send := Send{
				Iteration:  iter,
				From:       id,
				To:         target,
				Brokers:    brokers.Bits(),
				ModelBytes: payload.SizeBytes(cost.SST, cost.SID),
				WireBytes:  len(payload.EncodeV1(nil)),
			}
			res.Sends = append(res.Sends, send)
			res.ModelBytes += int64(send.ModelBytes)
			res.WireBytes += int64(send.WireBytes)
			deliveries = append(deliveries, delivery{to: target, payload: payload, brokers: brokers})
		}
		for _, d := range deliveries {
			if err := res.Merged[d.to].Merge(d.payload); err != nil {
				return nil, fmt.Errorf("propagation: merging at broker %d: %w", d.to, err)
			}
			for _, b := range d.brokers.Bits() {
				res.MergedBrokers[d.to].Set(b)
			}
		}
	}
	res.Hops = len(res.Sends)
	return res, nil
}

// pickTarget selects the neighbor to send to among those of equal or
// higher degree not yet communicated with, preferring the smallest degree
// (the paper's stated preference) — but smallest among the *strictly
// higher* degrees first, falling back to equal-degree neighbors (smallest
// id) only when no higher-degree neighbor is eligible. Two equal-degree
// neighbors send in the same iteration, so an exchange between them
// strands both summaries for the rest of the phase; routing toward
// strictly higher degrees keeps the multi-broker summaries flowing to the
// hubs that Algorithm 3 examines first. Every choice in the paper's
// Figure 7 walkthrough is consistent with this rule.
func pickTarget(g *topology.Graph, node topology.NodeID, degree int, communicated map[topology.NodeID]bool) (topology.NodeID, bool) {
	best := topology.NodeID(-1)
	bestDegree := 0
	for _, m := range g.Neighbors(node) {
		d := g.Degree(m)
		if d <= degree || communicated[m] {
			continue
		}
		if best < 0 || d < bestDegree || (d == bestDegree && m < best) {
			best, bestDegree = m, d
		}
	}
	if best >= 0 {
		return best, true
	}
	for _, m := range g.Neighbors(node) {
		if g.Degree(m) == degree && !communicated[m] {
			return m, true // equal degree, smallest id (neighbors are sorted)
		}
	}
	return 0, false
}

// Coverage returns, for each broker, how many brokers' subscriptions its
// merged summary covers — useful for diagnostics and tests.
func (r *Result) Coverage() []int {
	out := make([]int, len(r.MergedBrokers))
	for i, set := range r.MergedBrokers {
		out[i] = set.Count()
	}
	return out
}

// TotalCoverage reports whether the union of all Merged_Brokers sets
// covers every broker (it always should: each broker is in its own set).
func (r *Result) TotalCoverage() bool {
	n := len(r.MergedBrokers)
	union := subid.NewMask(n)
	for _, set := range r.MergedBrokers {
		for _, b := range set.Bits() {
			union.Set(b)
		}
	}
	return union.Count() == n
}

// FormatTrace renders the send log like the Figure 7 walkthrough (1-based
// broker numbers to match the paper's figure).
func (r *Result) FormatTrace() string {
	var b []byte
	lastIter := 0
	for _, s := range r.Sends {
		if s.Iteration != lastIter {
			b = append(b, fmt.Sprintf("iteration %d:\n", s.Iteration)...)
			lastIter = s.Iteration
		}
		brokers := make([]int, len(s.Brokers))
		for i, id := range s.Brokers {
			brokers[i] = id + 1
		}
		sort.Ints(brokers)
		b = append(b, fmt.Sprintf("  broker %d -> broker %d, Merged_Brokers=%v, %d model bytes\n",
			int(s.From)+1, int(s.To)+1, brokers, s.ModelBytes)...)
	}
	return string(b)
}
