package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/metrics"
)

func TestRecordRoundTrip(t *testing.T) {
	r := NewRecorder(8192)
	r.Record(EvSubscribe, 3, 7, 2, 0, "")
	r.Record(EvPeriodEnd, -1, 4, 21, 9000, "")
	r.Record(EvMergeError, 5, 128, 0, 0, "summary: bad version")

	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	want := []Record{
		{Seq: 0, Type: EvSubscribe, TypeName: "subscribe", Broker: 3, A: 7, B: 2},
		{Seq: 1, Type: EvPeriodEnd, TypeName: "period-end", Broker: -1, A: 4, B: 21, C: 9000},
		{Seq: 2, Type: EvMergeError, TypeName: "merge-error", Broker: 5, A: 128, Note: "summary: bad version"},
	}
	for i, w := range want {
		g := recs[i]
		if g.UnixNano == 0 {
			t.Errorf("record %d: zero timestamp", i)
		}
		g.UnixNano = 0
		if g != w {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestCapacityBound proves the journal's memory is bounded: after writing
// far more than the capacity, retained bytes never exceed the ring size,
// eviction is FIFO, and the newest records survive.
func TestCapacityBound(t *testing.T) {
	const capBytes = minCapacity
	r := NewRecorder(capBytes)
	const writes = 5000
	for i := 0; i < writes; i++ {
		r.Record(EvSubscribe, i%24, int64(i), 0, 0, "note-padding-to-make-records-bigger")
	}
	st := r.Stats()
	if st.Bytes > capBytes {
		t.Fatalf("retained %d bytes > capacity %d", st.Bytes, capBytes)
	}
	if st.Evicted == 0 {
		t.Fatalf("no evictions after %d writes into %d bytes", writes, capBytes)
	}
	if st.Records+int(st.Evicted) != writes {
		t.Fatalf("records %d + evicted %d != writes %d", st.Records, st.Evicted, writes)
	}
	recs := r.Records()
	if len(recs) != st.Records {
		t.Fatalf("decoded %d records, stats say %d", len(recs), st.Records)
	}
	// FIFO: the retained window is the newest contiguous suffix.
	for i, rec := range recs {
		wantSeq := uint64(writes - len(recs) + i)
		if rec.Seq != wantSeq {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, wantSeq)
		}
	}
}

func TestNoteTruncation(t *testing.T) {
	r := NewRecorder(0) // clamped to the minimum
	long := strings.Repeat("x", 4*maxNote)
	r.Record(EvWatchdogViolation, 1, 0, 0, 0, long)
	recs := r.Records()
	if len(recs) != 1 || len(recs[0].Note) != maxNote {
		t.Fatalf("note length = %d, want %d", len(recs[0].Note), maxNote)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(EvSubscribe, 0, 0, 0, 0, "ignored")
	if got := r.Records(); got != nil {
		t.Fatalf("nil recorder returned records: %v", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil recorder stats: %+v", st)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(16 * 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(EvMergeOK, g, int64(i), 0, 0, "")
				if i%100 == 0 {
					_ = r.Records()
					_ = r.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.NextSeq != 4000 {
		t.Fatalf("next seq = %d, want 4000", st.NextSeq)
	}
	if st.Bytes > 16*1024 {
		t.Fatalf("retained %d bytes > capacity", st.Bytes)
	}
	// Sequence numbers of retained records must be strictly increasing.
	recs := r.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRecorder(8192)
	r.Record(EvDrop, 4, 1, 77, 0, "summary")
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "drop") || !strings.Contains(text.String(), "broker=4") {
		t.Fatalf("text output: %q", text.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats   Stats    `json:"stats"`
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Stats.Records != 1 || len(doc.Records) != 1 || doc.Records[0].TypeName != "drop" {
		t.Fatalf("json doc: %+v", doc)
	}
}

func TestDump(t *testing.T) {
	r := NewRecorder(8192)
	r.Record(EvPeriodStart, -1, 1, 0, 0, "")
	reg := metrics.NewRegistry()
	reg.Counter("events_published").Add(42)

	var buf bytes.Buffer
	if err := Dump(&buf, r, reg); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Journal []Record           `json:"journal"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics["events_published"] != 42 {
		t.Fatalf("metrics in dump: %v", doc.Metrics)
	}
	// The dump itself is journaled, after the period-start record.
	if len(doc.Journal) != 2 || doc.Journal[1].TypeName != "crash-dump" {
		t.Fatalf("journal in dump: %+v", doc.Journal)
	}
}

func TestDumpToFile(t *testing.T) {
	r := NewRecorder(8192)
	r.Record(EvFullSync, -1, 3, 0, 0, "")
	path := t.TempDir() + "/crash.json"
	if err := DumpToFile(path, r, nil); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Journal []Record `json:"journal"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Journal) != 2 || doc.Journal[0].TypeName != "full-sync" {
		t.Fatalf("journal in file: %+v", doc.Journal)
	}
}
