// Crash dumps: the journal plus a registry snapshot, serialized to a
// file when the process panics or receives SIGQUIT. The dump is the
// flight recorder's reason for existing — the last seconds of engine
// history exactly as they were when things went wrong.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/subsum/subsum/internal/metrics"
)

// Dump writes the journal and the registry snapshot as one JSON document.
// Either argument may be nil; the corresponding section is omitted.
func Dump(w io.Writer, rec *Recorder, reg *metrics.Registry) error {
	doc := struct {
		WrittenAt string             `json:"written_at"`
		Stats     Stats              `json:"journal_stats"`
		Records   []Record           `json:"journal"`
		Metrics   map[string]float64 `json:"metrics,omitempty"`
	}{WrittenAt: time.Now().UTC().Format(time.RFC3339Nano)}
	if rec != nil {
		rec.Record(EvCrashDump, -1, 0, 0, 0, "")
		doc.Stats = rec.Stats()
		doc.Records = rec.Records()
	}
	if reg != nil {
		doc.Metrics = reg.Map()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DumpToFile writes Dump output to path (created or truncated).
func DumpToFile(path string, rec *Recorder, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Dump(f, rec, reg); err != nil {
		f.Close()
		return fmt.Errorf("flight: writing dump: %w", err)
	}
	return f.Close()
}
