// Package flight implements the engine's flight recorder: a bounded,
// binary ring journal of structured engine events. Where the metrics
// registry answers "how many" and the sampler answers "how fast over
// time", the journal answers "in what order" — it retains the last N
// kilobytes of discrete engine happenings (subscription churn,
// propagation period boundaries, merge outcomes, message loss, watchdog
// violations) with per-broker context and wall-clock timestamps, so a
// post-mortem can line events up against the metrics time-series.
//
// Records are encoded into a fixed-capacity byte ring; when the ring is
// full the oldest whole records are evicted, so memory is provably
// bounded regardless of event rate. Recording is lock-cheap: the record
// is varint-encoded into a stack scratch buffer outside the lock, and the
// critical section is an eviction scan plus one bounded copy. A nil
// *Recorder is valid and records nothing, so instrumented code pays one
// branch when the journal is off — the same discipline as the registry
// instruments.
package flight

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType tags a journal record.
type EventType uint8

// Journal event types recorded by the live engine.
const (
	// EvSubscribe: a subscription was registered (A = local id, B = number
	// of constrained attributes).
	EvSubscribe EventType = iota + 1
	// EvUnsubscribe: a subscription was removed (A = local id).
	EvUnsubscribe
	// EvPeriodStart: an Algorithm 2 propagation period began (A = period
	// number).
	EvPeriodStart
	// EvPeriodEnd: the period completed (A = period number, B = summary
	// hops, C = total summary payload bytes).
	EvPeriodEnd
	// EvFullSync: the period ships full merged summaries instead of deltas
	// (A = period number).
	EvFullSync
	// EvMergeOK: a received summary merged cleanly (A = payload bytes,
	// B = carried Merged_Brokers count).
	EvMergeOK
	// EvMergeError: a summary merge was rejected (A = payload bytes); the
	// note carries the error.
	EvMergeError
	// EvDrop: the fault-injection hook dropped a message (A = kind,
	// B = payload bytes; broker = destination); the note names the kind.
	EvDrop
	// EvDecodeError: a delivered payload could not be decoded (A = kind);
	// the note names the kind.
	EvDecodeError
	// EvWatchdogViolation: an invariant check failed; the note carries the
	// check name and detail.
	EvWatchdogViolation
	// EvCrashDump: a crash dump was requested (panic or SIGQUIT).
	EvCrashDump
	// EvRetract: an unsubscribe queued a retraction for a subscription
	// that had already been propagated (A = local id).
	EvRetract
	// EvConvergence: end-of-period convergence snapshot (A = period
	// number, B = max staleness in periods across all epoch-vector
	// entries, C = number of tracked entries lagging by one period or
	// more).
	EvConvergence
	// EvFPAttribution: a false positive was charged to a new
	// (attribute, operator-class, owner) triple for the first time
	// (broker = owner, A = attribute id, B = operator class); the note
	// names the attribute and operator class.
	EvFPAttribution
	// EvSubgroupDigest: per-subgroup digest analytics snapshot (A =
	// group, B = pruned checks, C = digest passes that delivered
	// nothing — the measured bloom false-positive count).
	EvSubgroupDigest
	// EvPhaseStart: a scenario phase began (A = phase index, B = planned
	// periods); the note names the phase.
	EvPhaseStart
	// EvPhaseEnd: a scenario phase completed (A = phase index, B = ticks
	// run); the note names the phase.
	EvPhaseEnd
	// EvSLOBreach: an SLO's error budget was exhausted — the objective
	// transitioned into the breach state (A = fast-burn in milli-units,
	// B = slow-burn in milli-units, C = budget remaining in milli-units);
	// the note names the objective.
	EvSLOBreach
	// EvSLORecover: a breached SLO transitioned back out of breach; the
	// note names the objective.
	EvSLORecover
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EvSubscribe:
		return "subscribe"
	case EvUnsubscribe:
		return "unsubscribe"
	case EvPeriodStart:
		return "period-start"
	case EvPeriodEnd:
		return "period-end"
	case EvFullSync:
		return "full-sync"
	case EvMergeOK:
		return "merge-ok"
	case EvMergeError:
		return "merge-error"
	case EvDrop:
		return "drop"
	case EvDecodeError:
		return "decode-error"
	case EvWatchdogViolation:
		return "watchdog-violation"
	case EvCrashDump:
		return "crash-dump"
	case EvRetract:
		return "retract"
	case EvConvergence:
		return "convergence"
	case EvFPAttribution:
		return "fp-attribution"
	case EvSubgroupDigest:
		return "subgroup-digest"
	case EvPhaseStart:
		return "phase-start"
	case EvPhaseEnd:
		return "phase-end"
	case EvSLOBreach:
		return "slo-breach"
	case EvSLORecover:
		return "slo-recover"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Record is one decoded journal entry. A, B and C are type-specific
// arguments (see the EventType docs); Broker is -1 for network-level
// events.
type Record struct {
	Seq      uint64    `json:"seq"`
	UnixNano int64     `json:"unix_nano"`
	Type     EventType `json:"-"`
	TypeName string    `json:"type"`
	Broker   int       `json:"broker"`
	A        int64     `json:"a"`
	B        int64     `json:"b"`
	C        int64     `json:"c"`
	Note     string    `json:"note,omitempty"`
}

// maxNote bounds the free-text payload of a record so a single Record
// call can never occupy more than a sliver of the ring.
const maxNote = 128

// minCapacity is the smallest usable ring; NewRecorder clamps up to it.
const minCapacity = 4096

// Recorder is the bounded ring journal. All methods are safe for
// concurrent use; all methods are also safe on a nil receiver (they
// record and report nothing), so callers hold a plain pointer that is nil
// when the journal is disabled.
type Recorder struct {
	mu   sync.Mutex
	data []byte // circular; absolute offsets are taken modulo len(data)
	head uint64 // absolute offset of the oldest record
	tail uint64 // absolute offset one past the newest record

	seq     uint64 // next sequence number
	records int    // records currently retained
	evicted uint64 // records pushed out by the capacity bound
}

// NewRecorder returns a journal retaining at most capBytes of encoded
// records (clamped to a 4 KiB minimum).
func NewRecorder(capBytes int) *Recorder {
	if capBytes < minCapacity {
		capBytes = minCapacity
	}
	return &Recorder{data: make([]byte, capBytes)}
}

// Record appends one event. broker is the owning broker id (-1 for
// network-level events); a, b, c are type-specific arguments; note is
// bounded free text (truncated at 128 bytes).
func (r *Recorder) Record(t EventType, broker int, a, b, c int64, note string) {
	if r == nil {
		return
	}
	if len(note) > maxNote {
		note = note[:maxNote]
	}
	// Encode outside the lock: type, seq placeholder skipped (seq is
	// assigned under the lock, so it is encoded there into the scratch
	// prefix), then the fixed fields.
	var scratch [1 + 6*binary.MaxVarintLen64 + maxNote]byte
	body := scratch[:0]
	body = append(body, byte(t))
	body = binary.AppendVarint(body, time.Now().UnixNano())
	body = binary.AppendVarint(body, int64(broker))
	body = binary.AppendVarint(body, a)
	body = binary.AppendVarint(body, b)
	body = binary.AppendVarint(body, c)
	body = binary.AppendUvarint(body, uint64(len(note)))
	body = append(body, note...)

	r.mu.Lock()
	defer r.mu.Unlock()
	var hdr [2 * binary.MaxVarintLen64]byte
	seqBytes := binary.PutUvarint(hdr[:], r.seq)
	r.seq++
	recLen := uint64(seqBytes + len(body))
	var lenHdr [binary.MaxVarintLen64]byte
	lenBytes := binary.PutUvarint(lenHdr[:], recLen)
	total := uint64(lenBytes) + recLen
	if total > uint64(len(r.data)) {
		return // cannot fit at all; drop (unreachable with the 4 KiB min)
	}
	// Evict whole records from the head until the new one fits.
	for r.tail+total-r.head > uint64(len(r.data)) {
		n, consumed := r.uvarintAt(r.head)
		r.head += uint64(consumed) + n
		r.records--
		r.evicted++
	}
	r.copyIn(lenHdr[:lenBytes])
	r.copyIn(hdr[:seqBytes])
	r.copyIn(body)
	r.records++
}

// copyIn appends p at the tail, wrapping as needed; callers hold r.mu and
// have already made room.
func (r *Recorder) copyIn(p []byte) {
	n := uint64(len(r.data))
	off := r.tail % n
	c := copy(r.data[off:], p)
	if c < len(p) {
		copy(r.data, p[c:])
	}
	r.tail += uint64(len(p))
}

// uvarintAt decodes a uvarint at absolute offset off; callers hold r.mu.
func (r *Recorder) uvarintAt(off uint64) (v uint64, consumed int) {
	n := uint64(len(r.data))
	var shift uint
	for i := 0; ; i++ {
		b := r.data[(off+uint64(i))%n]
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// Records decodes and returns every retained record, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.records)
	n := uint64(len(r.data))
	for off := r.head; off < r.tail; {
		recLen, consumed := r.uvarintAt(off)
		start := off + uint64(consumed)
		// Copy the record body into a linear scratch for decoding.
		body := make([]byte, recLen)
		for i := range body {
			body[i] = r.data[(start+uint64(i))%n]
		}
		off = start + recLen
		rec, err := decodeRecord(body)
		if err != nil {
			// A decode failure means ring corruption; surface what we have.
			break
		}
		out = append(out, rec)
	}
	return out
}

// decodeRecord parses one linearized record body.
func decodeRecord(body []byte) (Record, error) {
	var rec Record
	seq, n := binary.Uvarint(body)
	if n <= 0 || n >= len(body) {
		return rec, fmt.Errorf("flight: bad seq")
	}
	rec.Seq = seq
	body = body[n:]
	rec.Type = EventType(body[0])
	rec.TypeName = rec.Type.String()
	body = body[1:]
	fields := []*int64{&rec.UnixNano, nil, &rec.A, &rec.B, &rec.C}
	var brokerV int64
	fields[1] = &brokerV
	for _, f := range fields {
		v, n := binary.Varint(body)
		if n <= 0 {
			return rec, fmt.Errorf("flight: truncated record")
		}
		*f = v
		body = body[n:]
	}
	rec.Broker = int(brokerV)
	noteLen, n := binary.Uvarint(body)
	if n <= 0 || uint64(len(body)-n) < noteLen {
		return rec, fmt.Errorf("flight: truncated note")
	}
	rec.Note = string(body[n : n+int(noteLen)])
	return rec, nil
}

// Stats describes the journal's current occupancy.
type Stats struct {
	Records  int    `json:"records"`
	Bytes    int    `json:"bytes"`    // encoded bytes currently retained
	Capacity int    `json:"capacity"` // ring size in bytes
	Evicted  uint64 `json:"evicted"`  // records pushed out by the bound
	NextSeq  uint64 `json:"next_seq"`
}

// Stats returns the journal occupancy counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Records:  r.records,
		Bytes:    int(r.tail - r.head),
		Capacity: len(r.data),
		Evicted:  r.evicted,
		NextSeq:  r.seq,
	}
}

// WriteJSON renders the retained journal as a JSON object with occupancy
// stats and the decoded records, oldest first.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Stats   Stats    `json:"stats"`
		Records []Record `json:"records"`
	}{r.Stats(), r.Records()})
}

// WriteText renders the journal as human-readable lines, oldest first.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, rec := range r.Records() {
		ts := time.Unix(0, rec.UnixNano).UTC().Format("15:04:05.000000")
		line := fmt.Sprintf("%8d %s %-18s broker=%d a=%d b=%d c=%d", rec.Seq, ts, rec.TypeName, rec.Broker, rec.A, rec.B, rec.C)
		if rec.Note != "" {
			line += " " + rec.Note
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
