package siena

import (
	"math/rand"
	"testing"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

func stockSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Attribute{Name: "exchange", Type: schema.TypeString},
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
		schema.Attribute{Name: "volume", Type: schema.TypeInt},
	)
}

func sub(t testing.TB, s *schema.Schema, text string) *schema.Subscription {
	t.Helper()
	out, err := schema.ParseSubscription(s, text)
	if err != nil {
		t.Fatalf("%q: %v", text, err)
	}
	return out
}

func TestSubsumesTable(t *testing.T) {
	s := stockSchema(t)
	cases := []struct {
		a, b string
		want bool
	}{
		// Wider range subsumes narrower.
		{`price > 8`, `price > 9`, true},
		{`price > 9`, `price > 8`, false},
		{`price > 8`, `price > 8.5 && price < 9`, true},
		{`price > 8 && price < 10`, `price > 8.5 && price < 9`, true},
		{`price > 8.6 && price < 10`, `price > 8.5 && price < 9`, false},
		// Equality inside range.
		{`price > 8`, `price = 9`, true},
		{`price > 8`, `price = 8`, false},
		{`price = 9`, `price = 9`, true},
		{`price = 9`, `price > 8`, false},
		// Fewer attributes subsume more.
		{`price > 8`, `price > 9 && volume > 100`, true},
		{`price > 8 && volume > 100`, `price > 9`, false},
		// String covering.
		{`symbol >* OT`, `symbol = OTE`, true},
		{`symbol = OTE`, `symbol >* OT`, false},
		{`symbol >* OT`, `symbol >* OTE`, true},
		{`exchange = "N*SE"`, `exchange = NYSE`, true},
		{`exchange = "N*SE"`, `exchange = LSE`, false},
		// Mixed.
		{`symbol >* OT && price > 8`, `symbol = OTE && price = 9`, true},
		{`symbol >* OT && price > 8`, `symbol = OTE && price = 7`, false},
		// Not-equal.
		{`price != 5`, `price > 6`, true},
		{`price != 5`, `price > 4`, false},
		{`price != 5`, `price != 5`, true},
		{`exchange != NYSE`, `exchange = LSE`, true},
		{`exchange != NYSE`, `exchange = NYSE`, false},
		// Empty b matches nothing: subsumed by anything.
		{`price > 100`, `price > 5 && price < 4`, true},
	}
	for i, c := range cases {
		a, b := sub(t, s, c.a), sub(t, s, c.b)
		if got := Subsumes(s, a, b); got != c.want {
			t.Errorf("case %d: Subsumes(%q, %q) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestSubsumesSoundnessRandomized: whenever Subsumes(a,b), every random
// event matching b must match a.
func TestSubsumesSoundnessRandomized(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	rng := rand.New(rand.NewSource(4))
	var subs []*schema.Subscription
	for i := 0; i < 120; i++ {
		subs = append(subs, gen.AnchoredSubscription(0.8))
	}
	pairs := 0
	for i := 0; i < len(subs); i++ {
		for j := 0; j < len(subs); j++ {
			if i == j || !Subsumes(s, subs[i], subs[j]) {
				continue
			}
			pairs++
			for probe := 0; probe < 30; probe++ {
				ev := gen.Event(rng.Float64())
				if subs[j].Matches(ev) && !subs[i].Matches(ev) {
					t.Fatalf("unsound: %q subsumes %q but event %s matches only the latter",
						subs[i].Format(s), subs[j].Format(s), ev.Format(s))
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no subsuming pairs generated; workload misconfigured for this test")
	}
}

func TestPropagateModelZeroSubsumptionFloodsEverything(t *testing.T) {
	g := topology.CW24()
	sigma := 10
	stats := PropagateModel(g, sigma, 50, 0, 1)
	n := g.Len()
	// Every subscription reaches every other broker over the spanning
	// tree: (n-1) messages each, n·sigma subscriptions.
	wantHops := n * sigma * (n - 1)
	if stats.Hops != wantHops {
		t.Fatalf("hops = %d, want %d", stats.Hops, wantHops)
	}
	if stats.Bytes != int64(wantHops)*50 {
		t.Fatalf("bytes = %d", stats.Bytes)
	}
	// Every broker stores all n·sigma subscriptions.
	for b, held := range stats.Stored {
		if held != n*sigma {
			t.Fatalf("broker %d stores %d, want %d", b, held, n*sigma)
		}
	}
}

func TestPropagateModelSubsumptionReducesCost(t *testing.T) {
	g := topology.CW24()
	low := PropagateModel(g, 50, 50, 0.1, 1)
	high := PropagateModel(g, 50, 50, 0.9, 1)
	if high.Hops >= low.Hops {
		t.Fatalf("hops: high subsumption %d !< low %d", high.Hops, low.Hops)
	}
	if high.StorageBytes >= low.StorageBytes {
		t.Fatalf("storage: high %d !< low %d", high.StorageBytes, low.StorageBytes)
	}
	// Deterministic for a seed.
	again := PropagateModel(g, 50, 50, 0.9, 1)
	if again.Hops != high.Hops {
		t.Fatal("not deterministic")
	}
}

func TestRouteEventSingleMatch(t *testing.T) {
	g := topology.Figure7Tree()
	// Event at broker 1 (node 0) matching broker 9 (node 8):
	// path 1-2-5-7-8-9 = 5 hops.
	if got := RouteEvent(g, 0, []topology.NodeID{8}); got != 5 {
		t.Fatalf("hops = %d, want 5", got)
	}
	// Matching itself costs nothing.
	if got := RouteEvent(g, 0, []topology.NodeID{0}); got != 0 {
		t.Fatalf("self hops = %d", got)
	}
	if got := RouteEvent(g, 0, nil); got != 0 {
		t.Fatalf("empty hops = %d", got)
	}
}

func TestRouteEventSharedPrefixCountedOnce(t *testing.T) {
	g := topology.Figure7Tree()
	// From broker 1 to brokers 9 and 10: paths share 1-2-5-7-8; then one
	// hop each to 9 and 10: total 5 + 1 = 6? Path to 9: 1-2-5-7-8-9 (5
	// edges), to 10: 1-2-5-7-8-10 (5 edges), shared prefix 4 edges →
	// union = 4 + 1 + 1 = 6.
	got := RouteEvent(g, 0, []topology.NodeID{8, 9})
	if got != 6 {
		t.Fatalf("hops = %d, want 6", got)
	}
	// All brokers matched: the whole tree = 12 edges.
	all := make([]topology.NodeID, g.Len())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	if got := RouteEvent(g, 0, all); got != 12 {
		t.Fatalf("hops = %d, want 12 (every tree edge)", got)
	}
}

func TestPropagateRealSubsumptionSavesMessages(t *testing.T) {
	g := topology.CW24()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	build := func(p float64) PropagationStats {
		var subs []OwnedSub
		for b := 0; b < g.Len(); b++ {
			for k := 0; k < 20; k++ {
				subs = append(subs, OwnedSub{
					Owner: topology.NodeID(b),
					Sub:   gen.AnchoredSubscription(p),
				})
			}
		}
		return PropagateReal(g, s, subs)
	}
	low := build(0.05)
	high := build(0.95)
	if high.Hops >= low.Hops {
		t.Fatalf("real subsumption: high %d hops !< low %d", high.Hops, low.Hops)
	}
	if low.Bytes <= 0 || low.StorageBytes <= 0 {
		t.Fatalf("accounting: %+v", low)
	}
	// Upper bound: flooding cost.
	n := g.Len()
	if low.Hops > n*20*(n-1) {
		t.Fatalf("hops exceed flooding bound: %d", low.Hops)
	}
}
