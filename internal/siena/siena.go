// Package siena implements the comparator of the paper's evaluation: the
// Siena-style subsumption-based subscription propagation and reverse-path
// event routing (Section 2.2, Section 5.2).
//
// Two propagation variants are provided. PropagateModel follows the
// paper's experimental model exactly: per-source BFS spanning trees with a
// probabilistic subsumption cut, where broker B's probability is
// maxSubsumption × degree(B) ⁄ maxDegree. PropagateReal performs genuine
// subsumption checks between subscriptions (Subsumes), used by tests and
// available as an honest-comparator variant.
//
// Event routing follows the reverse paths set up by subscription
// propagation: an event reaches each matched broker along the spanning
// tree path between publisher and subscriber, with shared edges traversed
// once.
package siena

import (
	"math/rand"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/strmatch"
	"github.com/subsum/subsum/internal/topology"
)

// PropagationStats accounts one propagation run.
type PropagationStats struct {
	Hops         int   // broker-to-broker subscription messages
	Bytes        int64 // Hops × subscription size (or real sizes)
	StorageBytes int64 // subscriptions held across all brokers
	Stored       []int // per broker: subscriptions held (own + received)
}

// PropagateModel simulates Siena's subscription propagation under the
// paper's probabilistic model: every broker owns sigma subscriptions of
// subSize bytes; each is flooded over the BFS spanning tree rooted at its
// owner; at every receiving broker B the subscription stops with
// probability maxSubsumption × degree(B) ⁄ maxDegree ("the stated
// subsumption probability refers to the maximum probability among
// brokers"). Deterministic for a seed.
func PropagateModel(g *topology.Graph, sigma, subSize int, maxSubsumption float64, seed int64) PropagationStats {
	rng := rand.New(rand.NewSource(seed))
	n := g.Len()
	stats := PropagationStats{Stored: make([]int, n)}
	maxDeg := g.MaxDegree()
	prob := func(b topology.NodeID) float64 {
		if maxDeg == 0 {
			return 0
		}
		return maxSubsumption * float64(g.Degree(b)) / float64(maxDeg)
	}
	children := make([][][]topology.NodeID, n) // children[src][node] = tree children
	for src := 0; src < n; src++ {
		_, parent := g.BFSFrom(topology.NodeID(src))
		ch := make([][]topology.NodeID, n)
		for node, p := range parent {
			if p >= 0 {
				ch[p] = append(ch[p], topology.NodeID(node))
			}
		}
		children[src] = ch
	}
	for src := 0; src < n; src++ {
		stats.Stored[src] += sigma // own subscriptions
		for s := 0; s < sigma; s++ {
			// Flood one subscription down the tree; a queue of brokers
			// that received it and will forward.
			queue := []topology.NodeID{topology.NodeID(src)}
			for len(queue) > 0 {
				b := queue[0]
				queue = queue[1:]
				// The owner always forwards; intermediate brokers stop
				// with their subsumption probability.
				if int(b) != src && rng.Float64() < prob(b) {
					continue
				}
				for _, c := range children[src][b] {
					stats.Hops++
					stats.Stored[c]++
					queue = append(queue, c)
				}
			}
		}
	}
	stats.Bytes = int64(stats.Hops) * int64(subSize)
	for _, s := range stats.Stored {
		stats.StorageBytes += int64(s) * int64(subSize)
	}
	return stats
}

// RouteEvent returns the hop count for routing one event from origin to
// every matched broker along reverse paths: the union of the spanning-tree
// paths between origin and each matched broker, shared edges counted once
// (Siena forwards the event once per link).
func RouteEvent(g *topology.Graph, origin topology.NodeID, matched []topology.NodeID) int {
	if len(matched) == 0 {
		return 0
	}
	// Reverse paths follow each subscriber's spanning tree; the tree path
	// between origin and subscriber is a shortest path. Using the BFS tree
	// rooted at the origin gives the same path lengths and lets shared
	// prefixes merge, as Siena's per-link forwarding does.
	_, parent := g.BFSFrom(origin)
	type edge struct{ a, b topology.NodeID }
	seen := make(map[edge]bool)
	hops := 0
	for _, m := range matched {
		for node := m; node != origin; {
			p := parent[node]
			if p < 0 {
				break // unreachable; ignore
			}
			e := edge{a: p, b: node}
			if !seen[e] {
				seen[e] = true
				hops++
			}
			node = p
		}
	}
	return hops
}

// Subsumes reports whether subscription a subsumes b: every event matching
// b also matches a. The check is sound (never true spuriously) and may be
// conservatively false for exotic pattern pairs. This is the relation
// Siena's propagation uses: a broker does not forward b to a neighbor it
// has already sent a subsuming a to.
func Subsumes(s *schema.Schema, a, b *schema.Subscription) bool {
	bByAttr := make(map[schema.AttrID][]schema.Constraint)
	for _, c := range b.Constraints {
		bByAttr[c.Attr] = append(bByAttr[c.Attr], c)
	}
	aByAttr := make(map[schema.AttrID][]schema.Constraint)
	for _, c := range a.Constraints {
		aByAttr[c.Attr] = append(aByAttr[c.Attr], c)
	}
	for attr, aCons := range aByAttr {
		bCons, ok := bByAttr[attr]
		if !ok {
			return false // b unconstrained on attr: some matching event violates a
		}
		if s.TypeOf(attr).Arithmetic() {
			if !arithmeticSubsumed(aCons, bCons) {
				return false
			}
		} else {
			if !stringSubsumed(aCons, bCons) {
				return false
			}
		}
	}
	return true
}

// arithmeticSubsumed reports whether b's canonical interval (minus its ≠
// points) lies within a's interval and avoids a's ≠ points.
func arithmeticSubsumed(aCons, bCons []schema.Constraint) bool {
	ivA, neA := canonicalArith(aCons)
	ivB, neB := canonicalArith(bCons)
	if ivB.Empty() {
		return true // b can never match
	}
	if !interval.Covers(ivA, ivB) {
		return false
	}
	for x := range neA {
		if !ivB.Contains(x) {
			continue
		}
		if !neB[x] {
			return false // some b-value equals x and violates a's ≠ x
		}
	}
	return true
}

func canonicalArith(cons []schema.Constraint) (interval.Interval, map[float64]bool) {
	iv := interval.Full()
	ne := make(map[float64]bool)
	for _, c := range cons {
		switch c.Op {
		case schema.OpEQ:
			iv = interval.Intersect(iv, interval.Point(c.Value.Num))
		case schema.OpNE:
			ne[c.Value.Num] = true
		case schema.OpLT:
			iv = interval.Intersect(iv, interval.Below(c.Value.Num, false))
		case schema.OpLE:
			iv = interval.Intersect(iv, interval.Below(c.Value.Num, true))
		case schema.OpGT:
			iv = interval.Intersect(iv, interval.Above(c.Value.Num, false))
		case schema.OpGE:
			iv = interval.Intersect(iv, interval.Above(c.Value.Num, true))
		}
	}
	return iv, ne
}

// stringSubsumed: every a-constraint must be implied by some b-constraint.
func stringSubsumed(aCons, bCons []schema.Constraint) bool {
	for _, ca := range aCons {
		pa := strmatch.FromConstraint(ca)
		implied := false
		for _, cb := range bCons {
			pb := strmatch.FromConstraint(cb)
			if strmatch.Covers(pa, pb) {
				implied = true
				break
			}
			// A ≠ constraint of a is implied by an equality of b with a
			// different value.
			if pa.Op == schema.OpNE && pb.Op == schema.OpEQ && pa.Text != pb.Text {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// SubsumptionFilter retains the subscriptions a broker has already
// propagated and reports whether a new subscription is subsumed by any of
// them. This implements the paper's Section 6 "combining summarization and
// subsumption": a subsumed subscription can be dropped from the next
// summary delta — events matching it necessarily match the subsuming
// subscription of the same broker, so routing still reaches the owner,
// whose exact re-match delivers to both consumers.
//
// The zero value is not ready; use NewSubsumptionFilter. Not safe for
// concurrent use; callers serialize (the broker lock does).
type SubsumptionFilter struct {
	s       *schema.Schema
	history []*schema.Subscription
	max     int
}

// NewSubsumptionFilter creates a filter retaining at most maxHistory
// subscriptions (0 means unbounded). A bounded history trades memory for
// missed subsumptions — misses only cost bandwidth, never correctness.
func NewSubsumptionFilter(s *schema.Schema, maxHistory int) *SubsumptionFilter {
	return &SubsumptionFilter{s: s, max: maxHistory}
}

// Subsumed reports whether sub is subsumed by a retained subscription.
func (f *SubsumptionFilter) Subsumed(sub *schema.Subscription) bool {
	for _, prior := range f.history {
		if Subsumes(f.s, prior, sub) {
			return true
		}
	}
	return false
}

// Add retains sub for future checks (call for every subscription that WAS
// propagated). When the history is full, the oldest entry is evicted.
func (f *SubsumptionFilter) Add(sub *schema.Subscription) {
	if f.max > 0 && len(f.history) >= f.max {
		copy(f.history, f.history[1:])
		f.history = f.history[:len(f.history)-1]
	}
	f.history = append(f.history, sub)
}

// Remove forgets a retained subscription (identity comparison), reporting
// whether it was present. Call on unsubscription of a propagated
// subscription: a dead entry left behind would keep suppressing future
// subscriptions it subsumes even though its routing no longer exists —
// a permanent false-negative hole, not a bandwidth miss.
func (f *SubsumptionFilter) Remove(sub *schema.Subscription) bool {
	for i, prior := range f.history {
		if prior == sub {
			f.history = append(f.history[:i], f.history[i+1:]...)
			return true
		}
	}
	return false
}

// SubsumedBy reports whether prior (a subscription previously Added, now
// being withdrawn) subsumes sub — the check a broker uses to find
// subscriptions whose delta suppression depended on the dead entry.
func (f *SubsumptionFilter) SubsumedBy(prior, sub *schema.Subscription) bool {
	return Subsumes(f.s, prior, sub)
}

// Len returns the number of retained subscriptions.
func (f *SubsumptionFilter) Len() int { return len(f.history) }

// OwnedSub pairs a subscription with its owner for real propagation.
type OwnedSub struct {
	Owner topology.NodeID
	Sub   *schema.Subscription
}

// PropagateReal performs Siena propagation with genuine subsumption: each
// subscription floods its owner's BFS tree, but a broker does not forward
// a subscription over a tree edge on which it has already forwarded a
// subsuming subscription. Subscriptions are processed in the given order
// (arrival order matters for subsumption, as in Siena). Bytes use each
// subscription's modelled wire size.
func PropagateReal(g *topology.Graph, s *schema.Schema, subs []OwnedSub) PropagationStats {
	n := g.Len()
	stats := PropagationStats{Stored: make([]int, n)}
	type edge struct{ from, to topology.NodeID }
	forwarded := make(map[edge][]*schema.Subscription)
	children := make([][][]topology.NodeID, n)
	for src := 0; src < n; src++ {
		_, parent := g.BFSFrom(topology.NodeID(src))
		ch := make([][]topology.NodeID, n)
		for node, p := range parent {
			if p >= 0 {
				ch[p] = append(ch[p], topology.NodeID(node))
			}
		}
		children[src] = ch
	}
	for _, os := range subs {
		stats.Stored[os.Owner]++
		size := int64(os.Sub.WireSize())
		queue := []topology.NodeID{os.Owner}
		for len(queue) > 0 {
			b := queue[0]
			queue = queue[1:]
			for _, c := range children[os.Owner][b] {
				e := edge{from: b, to: c}
				if covered(s, forwarded[e], os.Sub) {
					continue
				}
				forwarded[e] = append(forwarded[e], os.Sub)
				stats.Hops++
				stats.Bytes += size
				stats.Stored[c]++
				queue = append(queue, c)
			}
		}
	}
	// Storage counts each held subscription at the batch's mean modelled
	// size.
	var meanSize int64
	if len(subs) > 0 {
		var total int64
		for _, os := range subs {
			total += int64(os.Sub.WireSize())
		}
		meanSize = total / int64(len(subs))
	}
	for _, held := range stats.Stored {
		stats.StorageBytes += int64(held) * meanSize
	}
	return stats
}

func covered(s *schema.Schema, prior []*schema.Subscription, sub *schema.Subscription) bool {
	for _, p := range prior {
		if Subsumes(s, p, sub) {
			return true
		}
	}
	return false
}
