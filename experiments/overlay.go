// Overlay-scaling experiment: flat degree-ordered propagation and
// Algorithm 3 routing versus summary-similarity subgrouping, swept over
// generated transit-stub overlays from tens to a thousand brokers. This
// is the harness behind `subsum-bench -experiment benchoverlay` and the
// committed BENCH_overlay.json baseline.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subgroup"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// OverlayConfig parametrizes the overlay-scaling sweep.
type OverlayConfig struct {
	// Sizes are the broker counts to sweep; nil means the full
	// {24, 64, 128, 256, 512, 1000} ladder.
	Sizes []int
	// Sigma is subscriptions per broker (default 40).
	Sigma int
	// Events is the number of events routed per size (default 200).
	Events int
	Seed   int64
	// Workers bounds the parallel period width (0 = all CPUs).
	Workers int
}

// DefaultOverlay returns the committed-baseline parameters.
func DefaultOverlay() OverlayConfig {
	return OverlayConfig{
		Sizes:  []int{24, 64, 128, 256, 512, 1000},
		Sigma:  40,
		Events: 200,
		Seed:   1,
	}
}

// OverlayRow is one (size, mode) measurement of the sweep.
type OverlayRow struct {
	Brokers int
	Mode    string // "flat" or "subgrouped"
	Groups  int    // subgroups (1 for flat)
	// BytesPerPeriod is the summary traffic of one propagation period:
	// full wire bytes for flat, intra-group uploads plus cross-border
	// digests for subgrouped.
	BytesPerPeriod int64
	// IntraBytes / DigestBytes split BytesPerPeriod for subgrouped mode:
	// member→leader full-summary uploads stay inside a subgroup (stub-
	// domain-local in the transit-stub model); only DigestBytes cross
	// subgroup borders. Flat has no locality — every byte is border
	// traffic — so its IntraBytes is 0 and DigestBytes equals the total.
	IntraBytes  int64
	DigestBytes int64
	// PeriodHops counts broker-to-broker messages in the period.
	PeriodHops int
	// HopsPerEvent is the mean routing cost (forward + delivery hops).
	HopsPerEvent float64
	// ForwardHopsPerEvent isolates the examination-walk messages the
	// digest pruning attacks.
	ForwardHopsPerEvent float64
	// PropagationNs is the wall time of one propagation period,
	// including (for subgrouped) signature extraction and clustering.
	PropagationNs int64
	// PeakMergedBytes is the largest per-broker merged summary: flat
	// merges grow toward whole-network size, subgroups stay region-sized.
	PeakMergedBytes int
	// Delivered and Spurious count owner-verified deliveries and pruned
	// false-positive candidates over the event batch.
	Delivered int
	Spurious  int
	// PruneRate / DigestFPRate / LeaderSkew are the subgrouped router's
	// digest analytics over the event batch (zero for flat mode): the
	// fraction of digest consultations that pruned a whole subgroup, the
	// measured pass-but-no-delivery rate (held against the Bloom design
	// point, subgroup.DesignDigestFPRate), and max/mean leader load.
	PruneRate    float64
	DigestFPRate float64
	LeaderSkew   float64
}

// overlayWorkload is the regional workload the sweep routes: short
// conjunctions over region-banded canonical values, with events carrying
// every attribute, so a measurable fraction of events actually match
// (the paper's stock 5-of-10-attribute conjunctions almost never match a
// random 5-attribute event, which would make routing costs degenerate).
func overlayWorkload(region int, seed int64) (workload.Config, error) {
	cfg := workload.DefaultConfig()
	cfg.AttrsPerSub = 2
	cfg.AttrsPerEvent = cfg.NumAttrs
	cfg.Subsumption = 1
	cfg.Region = region
	cfg.Seed = seed + int64(region)
	return cfg, cfg.Validate()
}

// overlayFixture is one generated size's shared input: the overlay, the
// per-broker summaries, the region generators, and the event batch both
// modes route.
type overlayFixture struct {
	g      *topology.Graph
	own    []*summary.Summary
	events []*schema.Event
	origin []topology.NodeID
}

func buildOverlayFixture(n int, cfg OverlayConfig) (*overlayFixture, error) {
	g, regions := topology.TransitStubRegions(n, cfg.Seed)
	gens := make(map[int]*workload.Generator)
	for _, r := range regions {
		if gens[r] != nil {
			continue
		}
		wcfg, err := overlayWorkload(r, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(wcfg)
		if err != nil {
			return nil, err
		}
		gens[r] = gen
	}
	own := make([]*summary.Summary, n)
	for i, r := range regions {
		gen := gens[r]
		sm := summary.New(gen.Schema(), interval.Lossy)
		for j := 0; j < cfg.Sigma; j++ {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := sm.Insert(id, gen.Subscription()); err != nil {
				return nil, err
			}
		}
		own[i] = sm
	}
	regionIDs := make([]int, 0, len(gens))
	for r := range gens {
		regionIDs = append(regionIDs, r)
	}
	sort.Ints(regionIDs)
	fx := &overlayFixture{g: g, own: own}
	for k := 0; k < cfg.Events; k++ {
		gen := gens[regionIDs[k%len(regionIDs)]]
		hitRate := 0.3
		if k%2 == 1 {
			hitRate = 0.8
		}
		fx.events = append(fx.events, gen.Event(hitRate))
		fx.origin = append(fx.origin, topology.NodeID((k*7)%n))
	}
	return fx, nil
}

// verifiedOwners filters the candidate set down to owners whose own rows
// match — the owner-side exact-match step of the paradigm. Returned
// sorted.
func verifiedOwners(candidates []topology.NodeID, own []*summary.Summary, ev *schema.Event) []topology.NodeID {
	var out []topology.NodeID
	for _, c := range candidates {
		if len(own[c].MatchKeys(ev)) > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runOverlayFlat measures one flat period and the event batch, returning
// the row and each event's owner-verified delivery set.
func runOverlayFlat(fx *overlayFixture, cfg OverlayConfig) (OverlayRow, [][]topology.NodeID, error) {
	row := OverlayRow{Brokers: fx.g.Len(), Mode: "flat", Groups: 1}
	start := time.Now()
	prop, err := propagation.RunWorkers(fx.g, fx.own, propagation.DefaultCostModel(), cfg.Workers)
	if err != nil {
		return row, nil, err
	}
	row.PropagationNs = time.Since(start).Nanoseconds()
	row.BytesPerPeriod = prop.WireBytes
	row.DigestBytes = prop.WireBytes
	row.PeriodHops = prop.Hops
	for _, sm := range prop.Merged {
		if sz := sm.EncodedSize(); sz > row.PeakMergedBytes {
			row.PeakMergedBytes = sz
		}
	}
	r, err := routing.NewRouter(fx.g, prop, routing.Config{Strategy: routing.HighestDegree})
	if err != nil {
		return row, nil, err
	}
	delivered := make([][]topology.NodeID, len(fx.events))
	var hops, fwd int
	for k, ev := range fx.events {
		match := func(at topology.NodeID) []topology.NodeID {
			var out []topology.NodeID
			for _, key := range prop.Merged[at].MatchKeys(ev) {
				broker, _ := subid.KeyParts(key)
				out = append(out, topology.NodeID(broker))
			}
			return out
		}
		trace := r.Route(fx.origin[k], match)
		hops += trace.Hops()
		fwd += trace.ForwardHops
		delivered[k] = verifiedOwners(trace.Delivered, fx.own, ev)
		row.Delivered += len(delivered[k])
		row.Spurious += len(trace.Delivered) - len(delivered[k])
	}
	row.HopsPerEvent = float64(hops) / float64(len(fx.events))
	row.ForwardHopsPerEvent = float64(fwd) / float64(len(fx.events))
	return row, delivered, nil
}

// runOverlaySubgrouped measures one subgrouped period (signatures +
// clustering + intra-group exchange + digest mesh) and the same event
// batch through the digest-first router.
func runOverlaySubgrouped(fx *overlayFixture, cfg OverlayConfig) (OverlayRow, [][]topology.NodeID, error) {
	row := OverlayRow{Brokers: fx.g.Len(), Mode: "subgrouped"}
	start := time.Now()
	sigs := make([]*summary.Signature, len(fx.own))
	for i, sm := range fx.own {
		sigs[i] = sm.Signature(0)
	}
	plan, err := subgroup.Cluster(fx.g, sigs, subgroup.Options{})
	if err != nil {
		return row, nil, err
	}
	res, err := subgroup.Propagate(fx.g, fx.own, plan, cfg.Workers)
	if err != nil {
		return row, nil, err
	}
	res.StampEpoch(1) // single measured period
	row.PropagationNs = time.Since(start).Nanoseconds()
	row.Groups = plan.NumGroups()
	row.BytesPerPeriod = res.WireBytes
	row.IntraBytes = res.IntraWireBytes
	row.DigestBytes = res.DigestWireBytes
	row.PeriodHops = res.Hops
	row.PeakMergedBytes = res.PeakMergedBytes
	r, err := subgroup.NewRouter(fx.g, res)
	if err != nil {
		return row, nil, err
	}
	delivered := make([][]topology.NodeID, len(fx.events))
	var hops, fwd int
	for k, ev := range fx.events {
		trace := r.Route(fx.origin[k], ev)
		hops += trace.Hops()
		fwd += trace.ForwardHops
		delivered[k] = verifiedOwners(trace.Delivered, fx.own, ev)
		row.Delivered += len(delivered[k])
		row.Spurious += len(trace.Delivered) - len(delivered[k])
	}
	row.HopsPerEvent = float64(hops) / float64(len(fx.events))
	row.ForwardHopsPerEvent = float64(fwd) / float64(len(fx.events))
	an := r.Analytics()
	row.PruneRate = an.PruneRate
	row.DigestFPRate = an.DigestFPRate
	row.LeaderSkew = an.LeaderSkew
	return row, delivered, nil
}

// OverlayScaling runs the sweep: for each size, one flat and one
// subgrouped period plus the shared event batch, asserting per event
// that both modes deliver to exactly the same owner-verified broker set
// (the differential equivalence check the committed baseline embeds).
func OverlayScaling(cfg OverlayConfig) ([]OverlayRow, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultOverlay().Sizes
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = DefaultOverlay().Sigma
	}
	if cfg.Events <= 0 {
		cfg.Events = DefaultOverlay().Events
	}
	var rows []OverlayRow
	for _, n := range cfg.Sizes {
		fx, err := buildOverlayFixture(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("overlay n=%d: %w", n, err)
		}
		flatRow, flatDel, err := runOverlayFlat(fx, cfg)
		if err != nil {
			return nil, fmt.Errorf("overlay n=%d flat: %w", n, err)
		}
		subRow, subDel, err := runOverlaySubgrouped(fx, cfg)
		if err != nil {
			return nil, fmt.Errorf("overlay n=%d subgrouped: %w", n, err)
		}
		for k := range fx.events {
			if len(flatDel[k]) != len(subDel[k]) {
				return nil, fmt.Errorf("overlay n=%d event %d: flat delivered %v, subgrouped %v",
					n, k, flatDel[k], subDel[k])
			}
			for i := range flatDel[k] {
				if flatDel[k][i] != subDel[k][i] {
					return nil, fmt.Errorf("overlay n=%d event %d: flat delivered %v, subgrouped %v",
						n, k, flatDel[k], subDel[k])
				}
			}
		}
		rows = append(rows, flatRow, subRow)
	}
	return rows, nil
}
