package experiments

import (
	"math/rand"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/siena"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// AblationForwarding compares the Algorithm 3 forwarding strategies of
// Section 4.3's trade-off discussion: the paper's highest-degree choice,
// uniform random, and the "ongoing work" virtual-degree load balancing.
// For each strategy it reports mean hops per event and the load share of
// the single most-visited broker (the load-balancing target).
func AblationForwarding(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Ablation — Algorithm 3 forwarding strategy (popularity 25%)",
		"strategy", "mean hops", "max broker load share%")
	own, err := buildSummaries(cfg, 10, 0.5, 21)
	if err != nil {
		return nil, err
	}
	prop, err := propagation.Run(cfg.Topo, own, cfg.cost())
	if err != nil {
		return nil, err
	}
	n := cfg.Topo.Len()
	for _, strat := range []routing.Strategy{routing.HighestDegree, routing.RandomUnvisited, routing.VirtualDegree} {
		router, err := routing.NewRouter(cfg.Topo, prop, routing.Config{Strategy: strat, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		wcfg := cfg.Workload
		wcfg.Seed = cfg.Seed + 31
		gen, err := workload.NewGenerator(wcfg)
		if err != nil {
			return nil, err
		}
		visits := make([]int64, n)
		var hops, events int64
		for origin := 0; origin < n; origin++ {
			for e := 0; e < cfg.EventsPerBroker/10; e++ {
				matchedInts := gen.MatchedBrokers(0.25, n)
				matched := make([]topology.NodeID, len(matchedInts))
				for i, m := range matchedInts {
					matched[i] = topology.NodeID(m)
				}
				trace := router.Route(topology.NodeID(origin), router.PopularityMatch(matched))
				hops += int64(trace.Hops())
				for _, v := range trace.Visited {
					visits[v]++
				}
				events++
			}
		}
		var total, max int64
		for _, v := range visits {
			total += v
			if v > max {
				max = v
			}
		}
		tab.AddRow(strat.String(),
			float64(hops)/float64(events),
			100*float64(max)/float64(total))
	}
	return tab, nil
}

// AblationEqualityFolding compares the paper's lossy AACS equality folding
// against the exact splitting mode on a workload where equality values
// deliberately fall inside subscribed ranges (the Table 2 workload keeps
// them outside, so folding never triggers there). It reports summary size
// under the cost model and the pre-filter false-positive rate.
func AblationEqualityFolding(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Ablation — AACS equality handling (range+point workload, 500 subs, 2000 events)",
		"mode", "model bytes", "range rows", "false positives/event", "matches/event")
	s := schema.MustNew(schema.Attribute{Name: "v", Type: schema.TypeFloat})
	for _, mode := range []interval.Mode{interval.Lossy, interval.Exact} {
		name := map[interval.Mode]string{interval.Lossy: "lossy (paper)", interval.Exact: "exact"}[mode]
		rng := rand.New(rand.NewSource(cfg.Seed + 41))
		sm := summary.New(s, mode)
		type entry struct {
			key uint64
			sub *schema.Subscription
		}
		var subs []entry
		for i := 0; i < 500; i++ {
			var cs []schema.Constraint
			if i%2 == 0 {
				// A range over [0,100): one of ten canonical bands.
				lo := float64(rng.Intn(10) * 10)
				cs = []schema.Constraint{
					{Attr: 0, Op: schema.OpGE, Value: schema.FloatValue(lo)},
					{Attr: 0, Op: schema.OpLE, Value: schema.FloatValue(lo + 10)},
				}
			} else {
				// An equality value inside the banded region.
				cs = []schema.Constraint{
					{Attr: 0, Op: schema.OpEQ, Value: schema.FloatValue(float64(rng.Intn(100)))},
				}
			}
			sub, err := schema.NewSubscription(s, cs...)
			if err != nil {
				return nil, err
			}
			id := subid.ID{Broker: 1, Local: subid.LocalID(i)}
			if err := sm.Insert(id, sub); err != nil {
				return nil, err
			}
			subs = append(subs, entry{key: id.Key(), sub: sub})
		}
		var fp, matches, events int64
		for e := 0; e < 2000; e++ {
			ev, err := schema.NewEvent(s, map[string]schema.Value{
				"v": schema.FloatValue(float64(rng.Intn(1200)) / 10),
			})
			if err != nil {
				return nil, err
			}
			got := sm.MatchKeys(ev)
			truth := make(map[uint64]bool)
			for _, sb := range subs {
				if sb.sub.Matches(ev) {
					truth[sb.key] = true
				}
			}
			for _, k := range got {
				if !truth[k] {
					fp++
				}
			}
			matches += int64(len(truth))
			events++
		}
		st := sm.Stats()
		tab.AddRow(name, sm.SizeBytes(cfg.SST, cfg.SID), st.Arithmetic.NumRanges,
			float64(fp)/float64(events), float64(matches)/float64(events))
	}
	return tab, nil
}

// AblationSubsumptionCombo measures the paper's Section 6 "combining
// summarization and subsumption": per broker, subscriptions subsumed by an
// already-batched subscription are dropped from the propagation delta
// (delivery is unchanged — events matching a dropped subscription match
// its subsumer and reach the same owner). Reported per whole-subscription
// subsumption probability: summary bandwidth without and with the filter,
// and the share of subscriptions filtered.
func AblationSubsumptionCombo(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Ablation — summarization+subsumption combination (σ=100)",
		"anchored%", "plain bytes", "filtered bytes", "saved%", "subs filtered%")
	const sigma = 100
	n := cfg.Topo.Len()
	for _, p := range []float64{0.25, 0.50, 0.75, 0.95} {
		wcfg := cfg.Workload
		wcfg.Seed = cfg.Seed + 61
		gen, err := workload.NewGenerator(wcfg)
		if err != nil {
			return nil, err
		}
		// Generate the per-broker batches once so both variants see the
		// identical workload.
		batches := make([][]*schema.Subscription, n)
		for i := range batches {
			batches[i] = make([]*schema.Subscription, sigma)
			for j := range batches[i] {
				batches[i][j] = gen.AnchoredSubscription(p)
			}
		}
		build := func(filter bool) (int64, int, error) {
			own := make([]*summary.Summary, n)
			filtered := 0
			for i := range own {
				own[i] = summary.New(gen.Schema(), interval.Lossy)
				var f *siena.SubsumptionFilter
				if filter {
					f = siena.NewSubsumptionFilter(gen.Schema(), 0)
				}
				for j, sub := range batches[i] {
					if f != nil && f.Subsumed(sub) {
						filtered++
						continue
					}
					id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
					if err := own[i].Insert(id, sub); err != nil {
						return 0, 0, err
					}
					if f != nil {
						f.Add(sub)
					}
				}
			}
			res, err := propagation.Run(cfg.Topo, own, cfg.cost())
			if err != nil {
				return 0, 0, err
			}
			return res.ModelBytes, filtered, nil
		}
		plain, _, err := build(false)
		if err != nil {
			return nil, err
		}
		withFilter, filtered, err := build(true)
		if err != nil {
			return nil, err
		}
		tab.AddRow(
			int(p*100),
			plain,
			withFilter,
			100*(1-float64(withFilter)/float64(plain)),
			100*float64(filtered)/float64(n*sigma),
		)
	}
	return tab, nil
}

// AblationBatch quantifies the batching trade-off noted in Section 5.2.1:
// small σ means low latency before summaries are sent but worse bandwidth
// amortization. It reports the summary bandwidth per propagated
// subscription as σ grows.
func AblationBatch(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Ablation — batching σ (summary bandwidth per subscription)",
		"sigma", "total bytes", "bytes/subscription")
	n := cfg.Topo.Len()
	for _, sigma := range cfg.Sigmas {
		bytes, err := summaryBandwidth(cfg, sigma, 0.5)
		if err != nil {
			return nil, err
		}
		perSub := float64(bytes) / float64(sigma*n)
		tab.AddRow(sigma, bytes, perSub)
	}
	return tab, nil
}
