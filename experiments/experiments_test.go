package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/metrics"
)

// quick returns a configuration small enough for unit tests while keeping
// the qualitative shape of every figure.
func quick() Config {
	cfg := Default()
	cfg.Sigmas = []int{10, 100}
	cfg.Subsumptions = []float64{0.10, 0.90}
	cfg.Popularities = []float64{0.10, 1.00}
	cfg.EventsPerBroker = 50
	return cfg
}

// cell parses a numeric table cell from the CSV rendering.
func cells(t *testing.T, csv string) [][]float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	var out [][]float64
	for _, line := range lines[1:] {
		var row []float64
		for _, c := range strings.Split(line, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
			if err != nil {
				v = -1 // non-numeric label cell
			}
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out
}

// TestFig8Shape checks the paper's headline claims: both Siena and the
// summaries beat broadcast by orders of magnitude, and summaries beat
// Siena by a substantial factor (the paper reports 4–8×) at every σ.
func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sigma, bcast, siena10, sum10, siena90, sum90 := r[0], r[1], r[2], r[3], r[4], r[5]
		if bcast < 2*siena10 {
			t.Errorf("sigma %.0f: broadcast %.0f not > siena %.0f", sigma, bcast, siena10)
		}
		// The paper's headline: summaries beat Siena by roughly 4-8x.
		if siena10 < 3*sum10 {
			t.Errorf("sigma %.0f: summary-10%% %.0f does not clearly beat siena-10%% %.0f", sigma, sum10, siena10)
		}
		if siena90 < 3*sum90 {
			t.Errorf("sigma %.0f: summary-90%% %.0f does not clearly beat siena-90%% %.0f", sigma, sum90, siena90)
		}
		// And sit well over an order of magnitude below broadcast.
		if bcast < 20*sum10 {
			t.Errorf("sigma %.0f: summary-10%% %.0f not ≪ broadcast %.0f", sigma, sum10, bcast)
		}
	}
}

// TestFig9Shape: ours is flat and below the broker count; Siena's hops
// decrease with subsumption and sit far above ours.
func TestFig9Shape(t *testing.T) {
	cfg := quick()
	tab, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	n := float64(cfg.Topo.Len())
	var ours []float64
	for _, r := range rows {
		sienaHops, ourHops := r[1], r[2]
		if ourHops >= n {
			t.Errorf("our hops %.0f not < brokers %.0f", ourHops, n)
		}
		if sienaHops <= ourHops*3 {
			t.Errorf("siena %.1f not ≫ ours %.1f", sienaHops, ourHops)
		}
		ours = append(ours, ourHops)
	}
	for i := 1; i < len(ours); i++ {
		if ours[i] != ours[0] {
			t.Errorf("our hops vary with subsumption: %v", ours)
		}
	}
	// Siena decreases as subsumption rises (first row = 10%, last = 90%).
	if rows[len(rows)-1][1] >= rows[0][1] {
		t.Errorf("siena hops do not fall with subsumption: %v vs %v", rows[0][1], rows[len(rows)-1][1])
	}
}

// TestFig10Shape: ours wins at low popularity; at full popularity Siena is
// competitive or better (the paper's crossover for very popular events).
func TestFig10Shape(t *testing.T) {
	tab, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	lowOurs, lowSiena := rows[0][1], rows[0][2]
	highOurs, highSiena := rows[1][1], rows[1][2]
	if lowOurs >= lowSiena {
		t.Errorf("popularity 10%%: ours %.2f not < siena %.2f", lowOurs, lowSiena)
	}
	// At full popularity Siena's reverse-path multicast wins (the paper's
	// crossover: "for very highly popular events, Siena is better").
	if highSiena > highOurs {
		t.Errorf("popularity 100%%: siena %.2f not ≤ ours %.2f", highSiena, highOurs)
	}
	// And the gap closes monotonically.
	lowGap := lowSiena - lowOurs
	highGap := highSiena - highOurs
	if highGap >= lowGap {
		t.Errorf("gap does not close: low %.2f, high %.2f", lowGap, highGap)
	}
}

// TestFig11Shape: summaries need the least storage; Siena at low
// subsumption approaches broadcast (the paper's observation).
func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	for _, r := range rows {
		s, bcast, siena10, sum10, siena90, sum90 := r[0], r[1], r[2], r[3], r[4], r[5]
		if sum10 >= siena10 {
			t.Errorf("subs %.0f: summary-10%% %.0f not < siena-10%% %.0f", s, sum10, siena10)
		}
		if sum90 >= siena90 {
			t.Errorf("subs %.0f: summary-90%% %.0f not < siena-90%% %.0f", s, sum90, siena90)
		}
		// Siena at 10% subsumption within 35% of broadcast.
		if siena10 < 0.65*bcast {
			t.Errorf("subs %.0f: siena-10%% %.0f not close to broadcast %.0f", s, siena10, bcast)
		}
	}
}

// TestMatchingCostLinear: Section 5.2.4's O(N): per-event cost at 16×
// subscriptions stays within ~32× of the small case (generous bound for a
// noisy CI machine; true growth should be ≈ linear).
func TestMatchingCostLinear(t *testing.T) {
	tab, err := MatchingCost(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	factorN := last[0] / first[0] // 16×
	factorT := last[1] / first[1] // time growth
	if factorT > factorN*4 {
		t.Errorf("matching cost superlinear: N×%.0f, time×%.1f", factorN, factorT)
	}
}

func TestFig7Trace(t *testing.T) {
	out, err := Fig7Trace()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"iteration 1:",
		"broker 2 -> broker 5",
		"examine broker 1",
		"examine broker 5",
		"deliver to broker 4",
		"deliver to broker 13",
		"forward hops 3, delivery hops 2, total 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	tab := Table2(Default())
	out := tab.String()
	for _, want := range []string{"n_t", "sigma", "cw24"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestAblationForwarding(t *testing.T) {
	cfg := quick()
	cfg.EventsPerBroker = 30
	tab, err := AblationForwarding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Virtual degree must reduce the hottest broker's load share relative
	// to plain highest-degree.
	if rows[2][2] >= rows[0][2] {
		t.Errorf("virtual degree load share %.1f%% not < highest-degree %.1f%%",
			rows[2][2], rows[0][2])
	}
}

func TestAblationEqualityFolding(t *testing.T) {
	tab, err := AblationEqualityFolding(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lossyFP, exactFP := rows[0][3], rows[1][3]
	if exactFP > lossyFP {
		t.Errorf("exact mode has more false positives (%.3f) than lossy (%.3f)", exactFP, lossyFP)
	}
	if exactFP != 0 {
		t.Errorf("exact mode false positives = %.3f, want 0 on an arithmetic-only workload", exactFP)
	}
	if lossyFP <= 0 {
		t.Errorf("lossy mode produced no false positives; the ablation workload is vacuous")
	}
	// Exact mode pays for precision with more range rows (splits at
	// equality points).
	lossyRows, exactRows := rows[0][2], rows[1][2]
	if exactRows <= lossyRows {
		t.Errorf("exact rows %.0f not > lossy rows %.0f", exactRows, lossyRows)
	}
}

func TestAblationBatch(t *testing.T) {
	tab, err := AblationBatch(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	// Bytes per subscription must fall as σ grows (amortization).
	if rows[len(rows)-1][2] >= rows[0][2] {
		t.Errorf("batching does not amortize: %v", rows)
	}
}

func TestAblationSubsumptionCombo(t *testing.T) {
	tab, err := AblationSubsumptionCombo(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		anchored, plain, filtered, saved := r[0], r[1], r[2], r[3]
		if filtered >= plain {
			t.Errorf("anchored %.0f%%: filter did not save bytes (%.0f vs %.0f)", anchored, filtered, plain)
		}
		if saved <= 0 || saved >= 100 {
			t.Errorf("anchored %.0f%%: saved%% = %.1f out of range", anchored, saved)
		}
	}
	// Savings grow with the anchored fraction.
	if rows[len(rows)-1][3] <= rows[0][3] {
		t.Errorf("savings do not grow with subsumption: %.1f%% -> %.1f%%", rows[0][3], rows[len(rows)-1][3])
	}
}

// TestCrossTopologyShapesHold: the paper's "results are similar in all
// cases" claim — on every tested overlay, summaries beat Siena on
// bandwidth and propagation hops stay at or below the broker count.
func TestCrossTopologyShapesHold(t *testing.T) {
	tab, err := CrossTopology(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		brokers, bcast, sienaB, summaryB, factor, propHops := r[1], r[2], r[3], r[4], r[5], r[6]
		if summaryB >= sienaB {
			t.Errorf("row %d: summary %.0f !< siena %.0f", i, summaryB, sienaB)
		}
		if sienaB >= bcast {
			t.Errorf("row %d: siena %.0f !< broadcast %.0f", i, sienaB, bcast)
		}
		if factor < 2 {
			t.Errorf("row %d: siena/summary factor %.1f < 2", i, factor)
		}
		if propHops > brokers {
			t.Errorf("row %d: propagation hops %.0f > brokers %.0f", i, propHops, brokers)
		}
	}
}

// TestSizeModelValidation: the Section 5.1 analytic equations must predict
// the measured summary size within 10% at every (σ, subsumption) point.
func TestSizeModelValidation(t *testing.T) {
	tab, err := SizeModelValidation(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := cells(t, tab.CSV())
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if e := r[4]; e > 10 || e < -10 {
			t.Errorf("sigma %.0f p %.0f%%: prediction error %.1f%% exceeds 10%%", r[0], r[1], e)
		}
	}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, sym := range []string{"n_t", "n_sr", "L_a", "s_id", "n_ae"} {
		if !strings.Contains(out, sym) {
			t.Errorf("Table1 missing %q", sym)
		}
	}
}

// TestParallelSweepDeterminism: regenerating the figures under the
// parallel event sweep must produce byte-identical tables to a serial
// run, at any worker count. MatchingCost's counter columns (everything
// except wall-clock timing) must agree the same way.
func TestParallelSweepDeterminism(t *testing.T) {
	serial := quick()
	serial.Workers = 1
	parallel := quick()
	parallel.Workers = 4
	figs := []struct {
		name string
		run  func(Config) (*metrics.Table, error)
	}{
		{"Fig8", Fig8},
		{"Fig9", Fig9},
		{"Fig10", Fig10},
		{"Fig11", Fig11},
	}
	for _, f := range figs {
		want, err := f.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", f.name, err)
		}
		got, err := f.run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", f.name, err)
		}
		if want.CSV() != got.CSV() {
			t.Errorf("%s differs between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s",
				f.name, want.CSV(), got.CSV())
		}
	}
	// MatchingCost reports wall-clock columns; compare only the counters.
	wantMC, err := MatchingCost(serial)
	if err != nil {
		t.Fatal(err)
	}
	gotMC, err := MatchingCost(parallel)
	if err != nil {
		t.Fatal(err)
	}
	wantCells, gotCells := cells(t, wantMC.CSV()), cells(t, gotMC.CSV())
	if len(wantCells) != len(gotCells) {
		t.Fatalf("MatchingCost row count differs: %d vs %d", len(wantCells), len(gotCells))
	}
	for r := range wantCells {
		for _, c := range []int{0, 2, 3, 4} { // subscriptions, T1, T2, matched
			if wantCells[r][c] != gotCells[r][c] {
				t.Errorf("MatchingCost row %d col %d: serial %v parallel %v",
					r, c, wantCells[r][c], gotCells[r][c])
			}
		}
	}
}
