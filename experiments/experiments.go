// Package experiments regenerates every table and figure of the
// subscription-summarization paper's evaluation (Section 5). Each function
// returns a metrics.Table whose rows correspond to the figure's x-axis
// points and whose columns are the figure's series. The cmd/subsum-bench
// binary prints them; the repository's bench_test.go wraps them in
// testing.B benchmarks.
//
// Absolute values depend on the topology approximation and the synthetic
// workload (see DESIGN.md); the comparisons — who wins, by what factor,
// where the crossover falls — are the reproduction targets, and
// EXPERIMENTS.md records paper-versus-measured for each.
package experiments

import (
	"fmt"
	"time"

	"github.com/subsum/subsum/internal/broadcast"
	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/siena"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// Config collects the evaluation parameters (defaults are Table 2).
type Config struct {
	Topo            *topology.Graph
	Sigmas          []int     // σ sweep (Figures 8 and 11 x-axis)
	Subsumptions    []float64 // subsumption sweep (Figure 9 x-axis)
	LowSubsumption  float64   // the "10%" series of Figures 8 and 11
	HighSubsumption float64   // the "90%" series of Figures 8 and 11
	Popularities    []float64 // popularity sweep (Figure 10 x-axis)
	EventsPerBroker int       // Figure 10: events published per broker
	SubSize         int       // average subscription/event size (bytes)
	SST, SID        int       // s_st and s_id of the cost equations
	Seed            int64
	Workload        workload.Config
	// Workers bounds the parallel sweep width used when regenerating
	// figures: 0 means one worker per CPU, 1 runs serially. Results are
	// identical at any width — each sweep point draws from its own seeded
	// generator (or from pre-drawn random state) and fills its own slot.
	Workers int
}

// Default returns the paper's Table 2 configuration on the CW24 backbone.
func Default() Config {
	return Config{
		Topo:            topology.CW24(),
		Sigmas:          []int{10, 50, 100, 250, 500, 750, 1000},
		Subsumptions:    []float64{0.10, 0.25, 0.50, 0.75, 0.90},
		LowSubsumption:  0.10,
		HighSubsumption: 0.90,
		Popularities:    []float64{0.10, 0.25, 0.50, 0.75, 0.90, 1.00},
		EventsPerBroker: 1000,
		SubSize:         50,
		SST:             4,
		SID:             4,
		Seed:            1,
		Workload:        workload.DefaultConfig(),
	}
}

// cost returns the propagation cost model.
func (c Config) cost() propagation.CostModel {
	return propagation.CostModel{SST: c.SST, SID: c.SID}
}

// buildSummaries generates σ subscriptions per broker at the given
// subsumption probability and returns the per-broker delta summaries.
func buildSummaries(cfg Config, sigma int, p float64, seedOffset int64) ([]*summary.Summary, error) {
	wcfg := cfg.Workload
	wcfg.Subsumption = p
	wcfg.Seed = cfg.Seed + seedOffset
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Topo.Len()
	out := make([]*summary.Summary, n)
	for i := 0; i < n; i++ {
		out[i] = summary.New(gen.Schema(), interval.Lossy)
		for j := 0; j < sigma; j++ {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := out[i].Insert(id, gen.Subscription()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Fig8 regenerates Figure 8: total network bandwidth (bytes) for one
// subscription-propagation period, versus σ (new subscriptions per broker
// per period). Series: broadcast baseline, Siena at the low and high
// subsumption probabilities, and subscription summaries at the same
// probabilities.
func Fig8(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Figure 8 — bandwidth for subscription propagation (bytes, per period)",
		"sigma", "broadcast", "siena-10%", "summary-10%", "siena-90%", "summary-90%")
	rows := make([][]any, len(cfg.Sigmas))
	err := core.SweepErr(len(cfg.Sigmas), cfg.Workers, func(i int) error {
		sigma := cfg.Sigmas[i]
		bc := broadcast.Propagate(cfg.Topo, sigma, cfg.SubSize)
		sienaLow := siena.PropagateModel(cfg.Topo, sigma, cfg.SubSize, cfg.LowSubsumption, cfg.Seed)
		sienaHigh := siena.PropagateModel(cfg.Topo, sigma, cfg.SubSize, cfg.HighSubsumption, cfg.Seed)
		sumLow, err := summaryBandwidth(cfg, sigma, cfg.LowSubsumption)
		if err != nil {
			return err
		}
		sumHigh, err := summaryBandwidth(cfg, sigma, cfg.HighSubsumption)
		if err != nil {
			return err
		}
		rows[i] = []any{sigma, bc.Bytes, sienaLow.Bytes, sumLow, sienaHigh.Bytes, sumHigh}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tab.AddRow(r...)
	}
	return tab, nil
}

func summaryBandwidth(cfg Config, sigma int, p float64) (int64, error) {
	own, err := buildSummaries(cfg, sigma, p, int64(sigma*1000)+int64(p*100))
	if err != nil {
		return 0, err
	}
	res, err := propagation.Run(cfg.Topo, own, cfg.cost())
	if err != nil {
		return 0, err
	}
	return res.ModelBytes, nil
}

// Fig9 regenerates Figure 9: mean hops for one subscription-propagation
// period (each broker propagates one batch), versus the maximum
// subsumption probability. The summary approach is independent of the
// subsumption probability — its flat line is the point of the figure.
func Fig9(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Figure 9 — mean hops for subscription propagation",
		"subsumption%", "siena", "summary")
	// Our hops do not depend on subsumption: one propagation run.
	own, err := buildSummaries(cfg, 10, 0.5, 9)
	if err != nil {
		return nil, err
	}
	res, err := propagation.Run(cfg.Topo, own, cfg.cost())
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(cfg.Subsumptions))
	core.Sweep(len(cfg.Subsumptions), cfg.Workers, func(i int) {
		// Mean over per-subscription floods: sigma=1 per broker, several
		// seeds.
		const trials = 20
		total := 0
		for trial := 0; trial < trials; trial++ {
			st := siena.PropagateModel(cfg.Topo, 1, cfg.SubSize, cfg.Subsumptions[i], cfg.Seed+int64(trial))
			total += st.Hops
		}
		means[i] = float64(total) / trials
	})
	for i, p := range cfg.Subsumptions {
		tab.AddRow(fmt.Sprintf("%.0f", p*100), means[i], float64(res.Hops))
	}
	return tab, nil
}

// Fig10 regenerates Figure 10: mean hops to route an event to all matched
// brokers, versus event popularity (the fraction of brokers matching the
// event, chosen randomly per event). EventsPerBroker events are published
// at every broker (24 000 total in the paper's setup).
func Fig10(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Figure 10 — mean hop counts in event propagation",
		"popularity%", "summary", "siena")
	own, err := buildSummaries(cfg, 10, 0.5, 10)
	if err != nil {
		return nil, err
	}
	prop, err := propagation.Run(cfg.Topo, own, cfg.cost())
	if err != nil {
		return nil, err
	}
	router, err := routing.NewRouter(cfg.Topo, prop, routing.Config{Strategy: routing.HighestDegree})
	if err != nil {
		return nil, err
	}
	wcfg := cfg.Workload
	wcfg.Seed = cfg.Seed + 77
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Topo.Len()
	for _, pop := range cfg.Popularities {
		// Pre-draw each event's matched-broker set serially, in the same
		// origin-major order as the original loop, so the generator's
		// random sequence — and therefore the figure — is identical at any
		// worker count. Routing is read-only (HighestDegree consults no
		// rng) and sweeps the events in parallel.
		events := n * cfg.EventsPerBroker
		matchedSets := make([][]topology.NodeID, events)
		for i := range matchedSets {
			matchedInts := gen.MatchedBrokers(pop, n)
			matched := make([]topology.NodeID, len(matchedInts))
			for j, m := range matchedInts {
				matched[j] = topology.NodeID(m)
			}
			matchedSets[i] = matched
		}
		ourHops := make([]int64, events)
		sienaHops := make([]int64, events)
		core.Sweep(events, cfg.Workers, func(i int) {
			origin := topology.NodeID(i / cfg.EventsPerBroker)
			matched := matchedSets[i]
			trace := router.Route(origin, router.PopularityMatch(matched))
			ourHops[i] = int64(trace.Hops())
			sienaHops[i] = int64(siena.RouteEvent(cfg.Topo, origin, matched))
		})
		var oursTotal, sienaTotal int64
		for i := 0; i < events; i++ {
			oursTotal += ourHops[i]
			sienaTotal += sienaHops[i]
		}
		tab.AddRow(fmt.Sprintf("%.0f", pop*100),
			float64(oursTotal)/float64(events), float64(sienaTotal)/float64(events))
	}
	return tab, nil
}

// Fig11 regenerates Figure 11: total storage across all brokers, versus
// the number of outstanding subscriptions per broker. Series as Figure 8.
func Fig11(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Figure 11 — storage requirements for subscriptions (bytes, all brokers)",
		"subs/broker", "broadcast", "siena-10%", "summary-10%", "siena-90%", "summary-90%")
	rows := make([][]any, len(cfg.Sigmas))
	err := core.SweepErr(len(cfg.Sigmas), cfg.Workers, func(i int) error {
		s := cfg.Sigmas[i]
		bc := broadcast.Propagate(cfg.Topo, s, cfg.SubSize)
		sienaLow := siena.PropagateModel(cfg.Topo, s, cfg.SubSize, cfg.LowSubsumption, cfg.Seed)
		sienaHigh := siena.PropagateModel(cfg.Topo, s, cfg.SubSize, cfg.HighSubsumption, cfg.Seed)
		sumLow, err := summaryStorage(cfg, s, cfg.LowSubsumption)
		if err != nil {
			return err
		}
		sumHigh, err := summaryStorage(cfg, s, cfg.HighSubsumption)
		if err != nil {
			return err
		}
		rows[i] = []any{s, bc.StorageBytes, sienaLow.StorageBytes, sumLow, sienaHigh.StorageBytes, sumHigh}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tab.AddRow(r...)
	}
	return tab, nil
}

func summaryStorage(cfg Config, subs int, p float64) (int64, error) {
	own, err := buildSummaries(cfg, subs, p, int64(subs*7)+int64(p*10))
	if err != nil {
		return 0, err
	}
	res, err := propagation.Run(cfg.Topo, own, cfg.cost())
	if err != nil {
		return 0, err
	}
	var total int64
	for _, m := range res.Merged {
		total += int64(m.SizeBytes(cfg.SST, cfg.SID))
	}
	return total, nil
}

// MatchingCost regenerates the Section 5.2.4 analysis: wall-clock cost of
// Algorithm 1 as the number of summarized subscriptions N grows,
// demonstrating the O(N) bound. Events use a 50% hit rate.
func MatchingCost(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Section 5.2.4 — matching cost of Algorithm 1 (mean per event)",
		"subscriptions", "ns/event", "collected/event (T1)", "P/event (T2)", "matched/event", "ns/(event·sub)")
	wcfg := cfg.Workload
	wcfg.Seed = cfg.Seed + 55
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return nil, err
	}
	sm := summary.New(gen.Schema(), interval.Lossy)
	const probes = 2000
	events := make([]*schema.Event, probes)
	for i := range events {
		events[i] = gen.Event(0.5)
	}
	next := 0
	for _, n := range []int{1000, 2000, 4000, 8000, 16000} {
		for ; next < n; next++ {
			id := subid.ID{Broker: subid.BrokerID(next % 1024), Local: subid.LocalID(next / 1024)}
			if err := sm.Insert(id, gen.Subscription()); err != nil {
				return nil, err
			}
		}
		// Pooled matchers sweep the probe events across all workers; the
		// per-event counts are slot-indexed, so the aggregates are
		// identical at any worker count.
		perMatched := make([]int64, probes)
		perCollected := make([]int64, probes)
		perUnique := make([]int64, probes)
		pool := summary.NewMatcherPool(sm)
		start := time.Now()
		core.Sweep(probes, cfg.Workers, func(i int) {
			m := pool.Get()
			keys, cost := m.MatchKeysWithCost(events[i])
			perMatched[i] = int64(len(keys))
			perCollected[i] = int64(cost.CollectedIDs)
			perUnique[i] = int64(cost.UniqueIDs)
			pool.Put(m)
		})
		elapsed := time.Since(start)
		var matched, collected, unique int64
		for i := 0; i < probes; i++ {
			matched += perMatched[i]
			collected += perCollected[i]
			unique += perUnique[i]
		}
		perEvent := float64(elapsed.Nanoseconds()) / probes
		tab.AddRow(n, perEvent,
			float64(collected)/probes, float64(unique)/probes,
			float64(matched)/probes, perEvent/float64(n))
	}
	return tab, nil
}

// Fig7Trace renders the paper's worked example: the Figure 7 propagation
// walkthrough followed by the Example 3 routing of an event matching
// brokers 4, 8, and 13, published at broker 1.
func Fig7Trace() (string, error) {
	g := topology.Figure7Tree()
	s := schema.MustNew(schema.Attribute{Name: "x", Type: schema.TypeFloat})
	own := make([]*summary.Summary, g.Len())
	for i := range own {
		own[i] = summary.New(s, interval.Lossy)
		sub, err := schema.NewSubscription(s, schema.Constraint{
			Attr: 0, Op: schema.OpEQ, Value: schema.FloatValue(float64(i)),
		})
		if err != nil {
			return "", err
		}
		if err := own[i].Insert(subid.ID{Broker: subid.BrokerID(i)}, sub); err != nil {
			return "", err
		}
	}
	res, err := propagation.Run(g, own, propagation.DefaultCostModel())
	if err != nil {
		return "", err
	}
	out := "Propagation phase (Algorithm 2) on the Figure 7 tree:\n" + res.FormatTrace()
	router, err := routing.NewRouter(g, res, routing.Config{Strategy: routing.HighestDegree})
	if err != nil {
		return "", err
	}
	matched := []topology.NodeID{3, 7, 12} // paper brokers 4, 8, 13
	trace := router.Route(0, router.PopularityMatch(matched))
	out += "\nEvent routing (Algorithm 3), event at broker 1 matching brokers 4, 8, 13:\n"
	for i, v := range trace.Visited {
		out += fmt.Sprintf("  step %d: examine broker %d\n", i, int(v)+1)
	}
	for _, d := range trace.Delivered {
		out += fmt.Sprintf("  deliver to broker %d\n", int(d)+1)
	}
	out += fmt.Sprintf("  forward hops %d, delivery hops %d, total %d\n",
		trace.ForwardHops, trace.DeliveryHops, trace.Hops())
	return out, nil
}

// Table1 prints the parameter definitions (the paper's Table 1), mapping
// each symbol to the code that measures or implements it.
func Table1() *metrics.Table {
	tab := metrics.NewTable("Table 1 — parameter definitions", "symbol", "meaning", "where in code")
	tab.AddRow("n_t", "total attribute names in the event/subscription type", "schema.Schema.Len")
	tab.AddRow("S", "average outstanding subscriptions per broker", "broker.Broker.NumSubscriptions")
	tab.AddRow("sigma", "new per-broker subscriptions per period", "experiments.Config.Sigmas")
	tab.AddRow("n_as", "different arithmetic attributes per subscription", "workload arithmetic split")
	tab.AddRow("n_sr", "rows in AACSSR per arithmetic attribute", "interval.Stats.NumRanges")
	tab.AddRow("n_e", "rows in AACSE per arithmetic attribute", "interval.Stats.NumEq")
	tab.AddRow("L_a", "subscription-id list size per arithmetic attribute", "interval.Stats.IDEntries")
	tab.AddRow("n_ss", "different string attributes per subscription", "workload string split")
	tab.AddRow("n_r", "rows in SACS per string attribute", "strmatch.Stats.NumRows")
	tab.AddRow("L_s", "subscription-id list size per string attribute", "strmatch.Stats.IDEntries")
	tab.AddRow("s_sv", "average string value size (bytes)", "workload.Config.StringLen")
	tab.AddRow("s_st", "storage size of an arithmetic value", "propagation.CostModel.SST")
	tab.AddRow("s_id", "storage size of a subscription id", "propagation.CostModel.SID")
	tab.AddRow("E", "average incoming events at a broker", "experiments.Config.EventsPerBroker")
	tab.AddRow("n_ae", "different arithmetic attributes per event", "workload event split")
	tab.AddRow("n_se", "different string attributes per event", "workload event split")
	return tab
}

// Table2 prints the parameter values in use (the paper's Table 2).
func Table2(cfg Config) *metrics.Table {
	tab := metrics.NewTable("Table 2 — parameter values", "symbol", "value", "meaning")
	tab.AddRow("brokers", cfg.Topo.Len(), cfg.Topo.Name()+" overlay")
	tab.AddRow("n_t", cfg.Workload.NumAttrs, "attributes in the schema")
	tab.AddRow("arith%", fmt.Sprintf("%.0f", cfg.Workload.ArithFraction*100), "arithmetic attribute share")
	tab.AddRow("attrs/sub", cfg.Workload.AttrsPerSub, "constrained attributes per subscription")
	tab.AddRow("n_sr", cfg.Workload.NumRanges, "canonical sub-ranges per arithmetic attribute")
	tab.AddRow("s_sv", cfg.Workload.StringLen, "string value size (bytes)")
	tab.AddRow("s_st,s_id", fmt.Sprintf("%d,%d", cfg.SST, cfg.SID), "arithmetic value / id sizes (bytes)")
	tab.AddRow("sub size", cfg.SubSize, "average subscription/event size (bytes)")
	tab.AddRow("sigma", fmt.Sprintf("%v", cfg.Sigmas), "new subscriptions per broker per period")
	tab.AddRow("subsumption", fmt.Sprintf("%v", cfg.Subsumptions), "max subsumption probabilities")
	tab.AddRow("popularity", fmt.Sprintf("%v", cfg.Popularities), "event popularity sweep")
	tab.AddRow("events", cfg.EventsPerBroker*cfg.Topo.Len(), "events routed in Figure 10")
	return tab
}
