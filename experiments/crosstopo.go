package experiments

import (
	"github.com/subsum/subsum/internal/broadcast"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/siena"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// CrossTopology validates the paper's claim that "the results ... are
// similar in all cases" across overlay topologies: for each overlay it
// reports the σ=100 propagation bandwidth of all three approaches, the
// summary-versus-Siena factor, propagation hop counts, and mean event
// routing hops at 25% popularity. The summary approach must win bandwidth
// on every topology and keep propagation hops at or below the broker
// count.
func CrossTopology(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Cross-topology — σ=100, subsumption 50%, popularity 25%",
		"topology", "brokers", "broadcast B", "siena B", "summary B",
		"siena/summary", "prop hops", "event hops ours", "event hops siena")
	topos := []*topology.Graph{
		topology.CW24(),
		topology.ATT33(),
		topology.Figure7Tree(),
		topology.Waxman(28, 0.4, 0.15, cfg.Seed),
		topology.Random(20, 8, cfg.Seed),
	}
	const sigma = 100
	for _, g := range topos {
		n := g.Len()
		local := cfg
		local.Topo = g
		own, err := buildSummaries(local, sigma, 0.5, 83)
		if err != nil {
			return nil, err
		}
		prop, err := propagation.Run(g, own, cfg.cost())
		if err != nil {
			return nil, err
		}
		bc := broadcast.Propagate(g, sigma, cfg.SubSize)
		sn := siena.PropagateModel(g, sigma, cfg.SubSize, 0.5, cfg.Seed)

		router, err := routing.NewRouter(g, prop, routing.Config{Strategy: routing.HighestDegree})
		if err != nil {
			return nil, err
		}
		wcfg := cfg.Workload
		wcfg.Seed = cfg.Seed + 91
		gen, err := workload.NewGenerator(wcfg)
		if err != nil {
			return nil, err
		}
		var oursHops, sienaHops, events int64
		for origin := 0; origin < n; origin++ {
			for e := 0; e < 50; e++ {
				matchedInts := gen.MatchedBrokers(0.25, n)
				matched := make([]topology.NodeID, len(matchedInts))
				for i, m := range matchedInts {
					matched[i] = topology.NodeID(m)
				}
				trace := router.Route(topology.NodeID(origin), router.PopularityMatch(matched))
				oursHops += int64(trace.Hops())
				sienaHops += int64(siena.RouteEvent(g, topology.NodeID(origin), matched))
				events++
			}
		}
		tab.AddRow(
			g.Name(), n,
			bc.Bytes, sn.Bytes, prop.ModelBytes,
			float64(sn.Bytes)/float64(prop.ModelBytes),
			prop.Hops,
			float64(oursHops)/float64(events),
			float64(sienaHops)/float64(events),
		)
	}
	return tab, nil
}
