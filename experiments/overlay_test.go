package experiments

import "testing"

// TestOverlayScalingReduced is the CI-sized sweep: ≤128 brokers, fewer
// events. The per-event delivery-set equivalence runs inside
// OverlayScaling itself; here we additionally require the headline
// claims to hold already at 128 brokers — subgrouping must cut both the
// propagation traffic and the routing hops, and keep the per-broker
// merged state below the flat high-water mark.
func TestOverlayScalingReduced(t *testing.T) {
	cfg := DefaultOverlay()
	cfg.Sizes = []int{24, 64, 128}
	cfg.Events = 60
	cfg.Sigma = 20
	rows, err := OverlayScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	byMode := map[string]map[int]OverlayRow{"flat": {}, "subgrouped": {}}
	for _, r := range rows {
		byMode[r.Mode][r.Brokers] = r
	}
	for _, n := range cfg.Sizes {
		flat, sub := byMode["flat"][n], byMode["subgrouped"][n]
		if flat.Brokers != n || sub.Brokers != n {
			t.Fatalf("missing rows for n=%d", n)
		}
		if flat.Delivered != sub.Delivered {
			t.Fatalf("n=%d: delivered counts differ: flat %d, subgrouped %d", n, flat.Delivered, sub.Delivered)
		}
		if flat.Delivered == 0 {
			t.Fatalf("n=%d: no deliveries — sweep degenerate", n)
		}
	}
	flat, sub := byMode["flat"][128], byMode["subgrouped"][128]
	// The headline wins: routing hops, cross-border traffic, and the
	// per-broker state high-water mark. Total subgrouped bytes run
	// slightly above flat (member uploads plus the digest mesh) — the
	// documented trade; see EXPERIMENTS.md.
	if sub.HopsPerEvent >= flat.HopsPerEvent {
		t.Errorf("n=128: subgrouped hops/event %.1f not below flat %.1f", sub.HopsPerEvent, flat.HopsPerEvent)
	}
	if sub.DigestBytes >= flat.BytesPerPeriod {
		t.Errorf("n=128: subgrouped cross-border bytes %d not below flat period bytes %d",
			sub.DigestBytes, flat.BytesPerPeriod)
	}
	if sub.PeakMergedBytes >= flat.PeakMergedBytes {
		t.Errorf("n=128: subgrouped peak merged bytes %d not below flat %d", sub.PeakMergedBytes, flat.PeakMergedBytes)
	}
	if sub.Groups < 2 {
		t.Errorf("n=128: only %d subgroup(s)", sub.Groups)
	}
}
