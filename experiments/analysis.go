package experiments

import (
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/workload"
)

// SizeModelValidation reproduces Section 5.1, the paper's closed-form
// bandwidth analysis: equations (1) and (2) predict a per-broker summary's
// size from the workload parameters alone; this experiment builds real
// summaries and compares the analytic prediction against the measured
// cost-model size.
//
// With σ subscriptions per broker at subsumption probability p, each of
// the n_t/2 constrained attributes is hit by ≈ σ·(n_t/2)/n_t = σ/2
// subscriptions:
//
//	AACS (eq. 1):  Σ_attrs [ 2·n_sr·s_st + n_e·s_st + L_a·s_id ]
//	  with n_sr = min(canonical ranges, subsumed hits),
//	  n_e ≈ (1−p)·σ/2 (every non-subsumed constraint is a fresh equality),
//	  L_a ≈ σ/2 (each subscription's id appears once per attribute).
//	SACS (eq. 2):  Σ_attrs [ n_r·(s_sv+1) + L_s·s_id ]
//	  with n_r ≈ (1−p)·σ/2 + covering-pattern rows, L_s ≈ σ/2.
func SizeModelValidation(cfg Config) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Section 5.1 — analytic size model vs measured (one broker)",
		"sigma", "subsumption%", "predicted B", "measured B", "error%")
	for _, sigma := range []int{100, 500, 1000} {
		for _, p := range []float64{0.10, 0.50, 0.90} {
			wcfg := cfg.Workload
			wcfg.Subsumption = p
			wcfg.Seed = cfg.Seed + int64(sigma) + int64(p*1000)
			gen, err := workload.NewGenerator(wcfg)
			if err != nil {
				return nil, err
			}
			sm := summary.New(gen.Schema(), interval.Lossy)
			for j := 0; j < sigma; j++ {
				id := subid.ID{Broker: 1, Local: subid.LocalID(j)}
				if err := sm.Insert(id, gen.Subscription()); err != nil {
					return nil, err
				}
			}
			measured := float64(sm.SizeBytes(cfg.SST, cfg.SID))
			predicted := predictSize(wcfg, sigma, p, cfg.SST, cfg.SID)
			tab.AddRow(sigma, int(p*100), predicted, measured,
				100*(measured-predicted)/measured)
		}
	}
	return tab, nil
}

// predictSize evaluates equations (1) and (2) from workload parameters.
func predictSize(w workload.Config, sigma int, p float64, sst, sid int) float64 {
	nArith := float64(w.NumAttrs) * w.ArithFraction
	nStr := float64(w.NumAttrs) - nArith
	hitsPerAttr := float64(sigma) * float64(w.AttrsPerSub) / float64(w.NumAttrs)

	// Equation (1), per arithmetic attribute.
	nsr := float64(w.NumRanges)
	if subsumedHits := p * hitsPerAttr; subsumedHits < nsr {
		nsr = subsumedHits
	}
	ne := (1 - p) * hitsPerAttr
	la := hitsPerAttr
	aacs := nArith * (2*nsr*float64(sst) + ne*float64(sst) + la*float64(sid))

	// Equation (2), per string attribute: non-subsumed constraints are
	// fresh equality rows; subsumed ones collapse into the ≈ NumPatterns
	// covering prefix rows (the generator emits the prefix itself on 20%
	// of subsumed draws, after which all values under it fold into one
	// row), leaving n_r ≈ (1−p)·hits + NumPatterns.
	nr := (1-p)*hitsPerAttr + float64(w.NumPatterns)
	ls := hitsPerAttr
	sacs := nStr * (nr*float64(w.StringLen+1) + ls*float64(sid))

	return aacs + sacs
}
