// Summary-health baseline: the observability PR's companion experiment.
// It drives the live engine — not the analytic models — through a
// healthy propagation regime and a fault regime on each topology and
// reports the numbers the health endpoint surfaces: end-to-end match
// precision (deliveries over summary-admitted events), the dominant
// false-positive attribution triple, and the convergence staleness seen
// before, during, and after a summary-loss fault. EXPERIMENTS.md's
// precision/staleness table is regenerated from these rows
// (`subsum-bench -experiment health`).
package experiments

import (
	"fmt"
	"math/rand"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// HealthConfig parameterizes the summary-health baseline.
type HealthConfig struct {
	SubsPerBroker   int
	EventsPerBroker int
	HitRate         float64 // workload event hit rate against canonical ranges
	FullSyncEvery   int     // full-sync cadence; also the staleness bound
	LossPeriods     int     // periods propagated while the victim's summaries drop
	Seed            int64
}

// DefaultHealthConfig mirrors the churn/throughput baselines: enough
// subscriptions for dense summaries, a hit rate that exercises both the
// delivery and false-positive branches, and a full-sync cadence short
// enough that the fault regime crosses the staleness bound.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		SubsPerBroker:   20,
		EventsPerBroker: 20,
		HitRate:         0.7,
		FullSyncEvery:   4,
		LossPeriods:     6,
		Seed:            431,
	}
}

// HealthBaseline runs the summary-health scenario on CW24 and a
// 128-broker transit-stub overlay and tabulates precision and staleness.
func HealthBaseline(cfg HealthConfig) (*metrics.Table, error) {
	tab := metrics.NewTable(
		"Summary-health baseline — precision and convergence staleness (live engine)",
		"topology", "brokers", "subs", "events", "deliveries", "false pos",
		"precision", "top attribution", "stale healthy", "stale@loss", "stale healed")
	for _, g := range []*topology.Graph{
		topology.CW24(),
		topology.TransitStub(128, cfg.Seed),
	} {
		if err := healthRow(tab, g, cfg); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

func healthRow(tab *metrics.Table, g *topology.Graph, cfg HealthConfig) error {
	// Match-dense workload (the delivery benchmarks' recipe): few
	// constrained attributes per subscription, many per event, all
	// constraints drawn from the canonical ranges — the Table 2 default
	// (5-of-10 on both sides) makes full-conjunction matches vanishingly
	// rare and would leave the precision column vacuous.
	wcfg := workload.DefaultConfig()
	wcfg.AttrsPerSub = 2
	wcfg.AttrsPerEvent = 8
	wcfg.Subsumption = 1.0
	wcfg.Seed = cfg.Seed
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return err
	}
	net, err := core.New(core.Config{
		Topology:      g,
		Schema:        gen.Schema(),
		Mode:          interval.Lossy,
		FullSyncEvery: cfg.FullSyncEvery,
	})
	if err != nil {
		return err
	}
	defer net.Close()

	n := net.Len()
	for i := 0; i < n; i++ {
		for s := 0; s < cfg.SubsPerBroker; s++ {
			if _, err := net.Subscribe(topology.NodeID(i), gen.Subscription(),
				func(subid.ID, *schema.Event) {}); err != nil {
				return err
			}
		}
	}
	if _, err := net.Propagate(); err != nil {
		return err
	}
	net.Flush()

	// Healthy regime: publish the event workload from seeded random
	// origins and read precision off the attribution report.
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	events := n * cfg.EventsPerBroker
	for e := 0; e < events; e++ {
		if err := net.Publish(topology.NodeID(rng.Intn(n)), gen.Event(cfg.HitRate)); err != nil {
			return err
		}
	}
	net.Flush()

	health := net.Health()
	staleHealthy := health.Convergence.MaxStaleness
	m := net.Metrics().Map()
	var deliveries, falsePos float64
	for name, v := range m {
		switch {
		case len(name) > 18 && name[:18] == "broker_deliveries{":
			deliveries += v
		case len(name) > 23 && name[:23] == "broker_false_positives{":
			falsePos += v
		}
	}
	precision := 0.0
	if deliveries+falsePos > 0 {
		precision = deliveries / (deliveries + falsePos)
	}
	topAttr := "-"
	if fp := health.FalsePositives; fp != nil && len(fp.TopK) > 0 {
		t := fp.TopK[0]
		topAttr = fmt.Sprintf("%s/%s@B%d", t.Attr, t.Class, t.Owner)
	}

	// Fault regime: starve the overlay of one tracked broker's summary
	// traffic for LossPeriods periods, then heal and run a full-sync
	// cycle. MaxStaleness must cross the bound under loss and return to
	// zero after the heal — the same sequence the watchdog invariant and
	// the staleness drop-test pin in miniature.
	victim := -1
	for _, bc := range health.Convergence.Brokers {
		for _, pe := range bc.Peers {
			victim = pe.Peer
			break
		}
		if victim >= 0 {
			break
		}
	}
	staleLoss, staleHealed := int64(-1), int64(-1)
	if victim >= 0 {
		net.InjectFaults(func(msg netsim.Message) bool {
			return msg.Kind == netsim.KindSummary && int(msg.From) == victim
		})
		for k := 0; k < cfg.LossPeriods; k++ {
			if _, err := net.Propagate(); err != nil {
				return err
			}
		}
		net.Flush()
		staleLoss = net.Convergence().MaxStaleness
		net.InjectFaults(nil)
		for k := 0; k < cfg.FullSyncEvery; k++ {
			if _, err := net.Propagate(); err != nil {
				return err
			}
		}
		net.Flush()
		staleHealed = net.Convergence().MaxStaleness
	}

	tab.AddRow(
		g.Name(), n, n*cfg.SubsPerBroker, events,
		int64(deliveries), int64(falsePos), precision, topAttr,
		staleHealthy, staleLoss, staleHealed)
	return nil
}
